package asm

import (
	"strings"
	"testing"

	"specmpk/internal/isa"
	"specmpk/internal/mem"
)

func TestBuilderLinkLayout(t *testing.T) {
	b := NewBuilder(0x10000)
	main := b.Func("main")
	main.Movi(isa.RegA0, 7).Call("helper").Halt()
	h := b.Func("helper")
	h.Addi(isa.RegA0, isa.RegA0, 1).Ret()

	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x10000 {
		t.Fatalf("entry = %x", p.Entry)
	}
	if len(p.Insts) != 5 {
		t.Fatalf("inst count = %d", len(p.Insts))
	}
	if p.Symbols["helper"] != 0x10000+3*isa.InstBytes {
		t.Fatalf("helper at %x", p.Symbols["helper"])
	}
	call := p.Insts[1]
	if call.Op != isa.OpJal || uint64(call.Imm) != p.Symbols["helper"] {
		t.Fatalf("call not resolved: %v", call)
	}
}

func TestBuilderLocalLabels(t *testing.T) {
	b := NewBuilder(0x10000)
	f := b.Func("main")
	f.Movi(isa.RegT0, 3)
	f.Label("loop")
	f.Addi(isa.RegT0, isa.RegT0, -1)
	f.Bne(isa.RegT0, isa.RegZero, "loop")
	f.Halt()
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	br := p.Insts[2]
	if uint64(br.Imm) != 0x10000+1*isa.InstBytes {
		t.Fatalf("branch target = %x", br.Imm)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(0x10000)
	f := b.Func("main")
	f.Label("x")
	f.Label("x")
	if _, err := b.Link(); err == nil {
		t.Fatal("duplicate label must fail")
	}

	b2 := NewBuilder(0x10000)
	b2.Func("main").Jump("nowhere")
	if _, err := b2.Link(); err == nil {
		t.Fatal("undefined label must fail")
	}

	b3 := NewBuilder(0x10000)
	b3.Func("notmain").Halt()
	if _, err := b3.Link(); err == nil {
		t.Fatal("missing entry must fail")
	}

	b4 := NewBuilder(0x10000)
	b4.Func("main").Branch(isa.OpAdd, 1, 2, "x")
	if _, err := b4.Link(); err == nil {
		t.Fatal("non-branch op in Branch must fail")
	}
}

func TestInstAt(t *testing.T) {
	b := NewBuilder(0x10000)
	b.Func("main").Nop().Halt()
	p, _ := b.Link()
	if in, ok := p.InstAt(0x10000 + isa.InstBytes); !ok || in.Op != isa.OpHalt {
		t.Fatalf("InstAt = %v, %v", in, ok)
	}
	if _, ok := p.InstAt(0x10000 + 3); ok {
		t.Fatal("misaligned pc must fail")
	}
	if _, ok := p.InstAt(0x10000 + 2*isa.InstBytes); ok {
		t.Fatal("out-of-range pc must fail")
	}
	if _, ok := p.InstAt(0xf000); ok {
		t.Fatal("below code base must fail")
	}
}

func TestLoadSetsUpAddressSpace(t *testing.T) {
	b := NewBuilder(0x10000)
	b.Func("main").Movi(isa.RegT0, 1).Halt()
	b.Region("shadow", 0x60000000, mem.PageSize, mem.ProtRW, 1)
	b.Region("safe", 0x61000000, mem.PageSize, mem.ProtRW, 3)
	b.Data(0x60000000, []byte{0xAA, 0xBB})
	b.InitReg(isa.RegSP, 0x7fff0000)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	as, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	// Code is executable and contains the encoded program.
	if _, _, err := as.Translate(0x10000, mem.Exec); err != nil {
		t.Fatalf("code not executable: %v", err)
	}
	img, err := as.ReadVirtBytes(0x10000, isa.InstBytes)
	if err != nil {
		t.Fatal(err)
	}
	in, err := isa.Decode(img)
	if err != nil || in.Op != isa.OpMovi {
		t.Fatalf("decoded %v, %v", in, err)
	}
	// Code must not be writable after load.
	if _, _, err := as.Translate(0x10000, mem.Write); err == nil {
		t.Fatal("code should be read-only")
	}
	// Regions carry their pKeys.
	pte, ok := as.Lookup(0x60000000)
	if !ok || pte.PKey != 1 {
		t.Fatalf("shadow pte %+v", pte)
	}
	pte, ok = as.Lookup(0x61000000)
	if !ok || pte.PKey != 3 {
		t.Fatalf("safe pte %+v", pte)
	}
	// Data was preloaded.
	bts, err := as.ReadVirtBytes(0x60000000, 2)
	if err != nil || bts[0] != 0xAA || bts[1] != 0xBB {
		t.Fatalf("data = %v, %v", bts, err)
	}
}

func TestLoadRejectsUnalignedRegion(t *testing.T) {
	b := NewBuilder(0x10000)
	b.Func("main").Halt()
	b.Region("bad", 0x60000100, mem.PageSize, mem.ProtRW, 1)
	p, _ := b.Link()
	if _, err := p.Load(); err == nil {
		t.Fatal("unaligned region must fail")
	}
}

func TestDisassemble(t *testing.T) {
	b := NewBuilder(0x10000)
	b.Func("main").Movi(isa.RegT0, 5).Halt()
	p, _ := b.Link()
	d := p.Disassemble()
	if !strings.Contains(d, "main:") || !strings.Contains(d, "movi r9, 5") {
		t.Fatalf("bad disassembly:\n%s", d)
	}
}

const sampleText = `
# sample program
.code 0x10000
.entry main
.region heap 0x20000000 0x1000 rw 0
.region shadow 0x60000000 0x1000 rw 1
.data 0x20000000 de ad
.word 0x20000100 0x1122334455667788
.initreg sp 0x7fff0000

main:
    movi t0, 10
    movi t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bne t0, zero, loop
    st t1, 0(gp)
    call leaf
    halt

leaf:
    rdpkru t2
    ret
`

func TestParseText(t *testing.T) {
	p, err := Parse(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x10000 {
		t.Fatalf("entry %x", p.Entry)
	}
	if len(p.Regions) != 2 || p.Regions[1].PKey != 1 {
		t.Fatalf("regions %+v", p.Regions)
	}
	if p.InitRegs[isa.RegSP] != 0x7fff0000 {
		t.Fatal("initreg sp")
	}
	if len(p.Data) != 2 || p.Data[0].Bytes[0] != 0xde {
		t.Fatalf("data %+v", p.Data)
	}
	if len(p.Data[1].Bytes) != 8 || p.Data[1].Bytes[7] != 0x11 {
		t.Fatalf("word data %+v", p.Data[1].Bytes)
	}
	// The bne must point back at "loop".
	var bne isa.Inst
	for _, in := range p.Insts {
		if in.Op == isa.OpBne {
			bne = in
		}
	}
	if uint64(bne.Imm) != p.Symbols["loop"] {
		t.Fatalf("bne target %x want %x", bne.Imm, p.Symbols["loop"])
	}
	// call resolves to leaf; ret is jalr r0,(ra).
	var sawCall, sawRet bool
	for _, in := range p.Insts {
		if in.Op == isa.OpJal && in.Rd == isa.RegRA && uint64(in.Imm) == p.Symbols["leaf"] {
			sawCall = true
		}
		if in.IsReturn() {
			sawRet = true
		}
	}
	if !sawCall || !sawRet {
		t.Fatal("call/ret not assembled")
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	// Every instruction String() form must reparse to the same instruction
	// (branch/jal targets are addresses, which the parser treats as labels —
	// skip those).
	insts := []isa.Inst{
		{Op: isa.OpNop},
		{Op: isa.OpHalt},
		{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: isa.OpDiv, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: isa.OpAddi, Rd: 1, Rs1: 2, Imm: -8},
		{Op: isa.OpMovi, Rd: 9, Imm: 1 << 40},
		{Op: isa.OpLd, Rd: 9, Rs1: 2, Imm: 16},
		{Op: isa.OpSt, Rs1: 2, Rs2: 9, Imm: -16},
		{Op: isa.OpLb, Rd: 9, Rs1: 2, Imm: 0},
		{Op: isa.OpSb, Rs1: 2, Rs2: 9, Imm: 1},
		{Op: isa.OpJalr, Rd: 1, Rs1: 9, Imm: 0},
		{Op: isa.OpWrpkru, Rs1: 5},
		{Op: isa.OpRdpkru, Rd: 5},
		{Op: isa.OpRdcycle, Rd: 5},
		{Op: isa.OpClflush, Rs1: 4, Imm: 64},
	}
	src := "main:\n"
	for _, in := range insts {
		src += "  " + in.String() + "\n"
	}
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != len(insts) {
		t.Fatalf("count %d want %d", len(p.Insts), len(insts))
	}
	for i := range insts {
		if p.Insts[i] != insts[i] {
			t.Fatalf("inst %d: %v != %v", i, p.Insts[i], insts[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"main:\n  frobnicate r1\n",
		"main:\n  add r1, r2\n",          // wrong arity
		"main:\n  add r1, r2, r99\n",     // bad register
		"main:\n  ld r1, r2\n",           // bad memory operand
		"main:\n  beq r1, r2, missing\n", // undefined label
		".region x 0x1000 0x1000 rq 0\n", // bad prot
		".bogus 1\n",                     // unknown directive
		".data 0x1000 zz\n",              // bad hex
		"main:\nmain:\n  nop\n",          // duplicate label
		"  nop\n",                        // no entry label
		".initreg r99 5\nmain:\n  nop\n", // bad register
		".entry other\nmain:\n  nop\n",   // entry not defined
		"bad label: nop\n",               // label with space
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParsedProgramLoads(t *testing.T) {
	p, err := Parse(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(); err != nil {
		t.Fatal(err)
	}
}

// TestBuilderEmitterSurface drives every convenience emitter once and
// checks the emitted opcodes (the workload generator and harnesses use
// these from other packages; this keeps asm's own coverage honest).
func TestBuilderEmitterSurface(t *testing.T) {
	b := NewBuilder(0x10000)
	b.SetEntry("start")
	b.DataSymbol(0x20000000, "start")
	b.Region("heap", 0x20000000, mem.PageSize, mem.ProtRW, 0)
	f := b.Func("start")
	if f.Name() != "start" {
		t.Fatal("Name")
	}
	f.Sub(1, 2, 3).Xor(4, 5, 6).Mul(7, 8, 9)
	f.Andi(1, 2, 3).Shli(4, 5, 6).Shri(7, 8, 9)
	f.St(1, 2, 8).Lb(3, 4, 0).Sb(5, 6, 1)
	f.Blt(1, 2, "tgt").Bge(3, 4, "tgt")
	f.Label("tgt")
	f.CallIndirect(9, 0)
	f.Rdcycle(10)
	f.Halt()
	if f.Len() != 14 {
		t.Fatalf("Len = %d", f.Len())
	}
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.Symbols["start"] {
		t.Fatal("SetEntry not honoured")
	}
	wantOps := []isa.Op{isa.OpSub, isa.OpXor, isa.OpMul, isa.OpAndi, isa.OpShli,
		isa.OpShri, isa.OpSt, isa.OpLb, isa.OpSb, isa.OpBlt, isa.OpBge,
		isa.OpJalr, isa.OpRdcycle, isa.OpHalt}
	for i, op := range wantOps {
		if p.Insts[i].Op != op {
			t.Fatalf("inst %d op %v, want %v", i, p.Insts[i].Op, op)
		}
	}
	// The data symbol resolved to the entry address.
	as, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := as.ReadVirt64(0x20000000)
	if v != p.Entry {
		t.Fatalf("data symbol = %#x, want %#x", v, p.Entry)
	}
	// Branch targets resolved to the label.
	if uint64(p.Insts[9].Imm) != p.CodeBase+11*isa.InstBytes {
		t.Fatalf("blt target %#x", p.Insts[9].Imm)
	}
}

func TestDataSymbolUndefined(t *testing.T) {
	b := NewBuilder(0x10000)
	b.DataSymbol(0x1000, "ghost")
	b.Func("main").Halt()
	if _, err := b.Link(); err == nil {
		t.Fatal("undefined data symbol must fail")
	}
}
