package asm

import "testing"

// FuzzParse checks the text assembler never panics, and that anything it
// accepts survives the Format/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sampleText)
	f.Add("main:\n  nop\n")
	f.Add(".code 0x10000\n.entry main\nmain: movi r1, -1\n  wrpkru r1\n  halt\n")
	f.Add(".region x 0x1000 0x1000 rwx 3\nmain:\n  beq r1, r2, main\n")
	f.Add(".data 0x1000 de ad be ef\n.word 0x2000 7\nmain:\n  ld r5, 8(r2)\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		out, err := Format(p)
		if err != nil {
			// Format only rejects out-of-text control targets, which Parse
			// cannot produce (it resolves labels within the program).
			t.Fatalf("Format rejected parser output: %v", err)
		}
		q, err := Parse(out)
		if err != nil {
			t.Fatalf("Parse(Format) failed:\n%s\n%v", out, err)
		}
		if len(q.Insts) != len(p.Insts) {
			t.Fatalf("round trip changed instruction count")
		}
		for i := range p.Insts {
			if q.Insts[i] != p.Insts[i] {
				t.Fatalf("round trip changed instruction %d", i)
			}
		}
	})
}
