package asm

import (
	"fmt"

	"specmpk/internal/isa"
	"specmpk/internal/mem"
)

// Builder assembles a Program from function bodies with symbolic labels.
// Functions are laid out in definition order starting at the code base;
// labels are function-local, function names are global.
type Builder struct {
	codeBase uint64
	funcs    []*FuncBuilder
	byName   map[string]*FuncBuilder
	regions  []Region
	data     []DataSeg
	dataSyms []dataSym
	initRegs map[uint8]uint64
	entry    string
	errs     []error
}

type dataSym struct {
	addr uint64
	fn   string
}

// NewBuilder starts a program at the given code base address.
func NewBuilder(codeBase uint64) *Builder {
	return &Builder{
		codeBase: codeBase,
		byName:   make(map[string]*FuncBuilder),
		initRegs: make(map[uint8]uint64),
		entry:    "main",
	}
}

// SetEntry names the entry function (default "main").
func (b *Builder) SetEntry(name string) { b.entry = name }

// Region declares a mapped range.
func (b *Builder) Region(name string, base, size uint64, prot mem.Prot, pkey int) {
	b.regions = append(b.regions, Region{Name: name, Base: base, Size: size, Prot: prot, PKey: pkey})
}

// Data preloads bytes at addr.
func (b *Builder) Data(addr uint64, bytes []byte) {
	b.data = append(b.data, DataSeg{Addr: addr, Bytes: bytes})
}

// DataSymbol preloads the 8-byte little-endian address of a function at
// addr once layout is known (function-pointer tables for the CPI scheme).
func (b *Builder) DataSymbol(addr uint64, fn string) {
	b.dataSyms = append(b.dataSyms, dataSym{addr: addr, fn: fn})
}

// InitReg seeds a register before execution.
func (b *Builder) InitReg(reg uint8, val uint64) { b.initRegs[reg] = val }

// Func opens (or reopens) a function body.
func (b *Builder) Func(name string) *FuncBuilder {
	if f, ok := b.byName[name]; ok {
		return f
	}
	f := &FuncBuilder{b: b, name: name, labels: make(map[string]int)}
	b.funcs = append(b.funcs, f)
	b.byName[name] = f
	return f
}

type fixup struct {
	instIdx int    // index within the function
	label   string // local label or global function name
}

// FuncBuilder emits instructions into one function.
type FuncBuilder struct {
	b      *Builder
	name   string
	insts  []isa.Inst
	labels map[string]int
	fixups []fixup
}

// Name returns the function's symbol name.
func (f *FuncBuilder) Name() string { return f.name }

// Len returns the number of instructions emitted so far.
func (f *FuncBuilder) Len() int { return len(f.insts) }

// Emit appends a raw instruction.
func (f *FuncBuilder) Emit(in isa.Inst) *FuncBuilder {
	f.insts = append(f.insts, in)
	return f
}

// Label binds a function-local label at the current position.
func (f *FuncBuilder) Label(name string) *FuncBuilder {
	if _, dup := f.labels[name]; dup {
		f.b.errs = append(f.b.errs, fmt.Errorf("asm: duplicate label %q in %s", name, f.name))
	}
	f.labels[name] = len(f.insts)
	return f
}

func (f *FuncBuilder) emitRef(in isa.Inst, label string) *FuncBuilder {
	f.fixups = append(f.fixups, fixup{instIdx: len(f.insts), label: label})
	return f.Emit(in)
}

// --- convenience emitters -------------------------------------------------

// Nop emits a no-op.
func (f *FuncBuilder) Nop() *FuncBuilder { return f.Emit(isa.Inst{Op: isa.OpNop}) }

// Halt stops the machine.
func (f *FuncBuilder) Halt() *FuncBuilder { return f.Emit(isa.Inst{Op: isa.OpHalt}) }

// Op3 emits a register-register ALU op.
func (f *FuncBuilder) Op3(op isa.Op, rd, rs1, rs2 uint8) *FuncBuilder {
	return f.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Add emits rd = rs1 + rs2.
func (f *FuncBuilder) Add(rd, rs1, rs2 uint8) *FuncBuilder { return f.Op3(isa.OpAdd, rd, rs1, rs2) }

// Sub emits rd = rs1 - rs2.
func (f *FuncBuilder) Sub(rd, rs1, rs2 uint8) *FuncBuilder { return f.Op3(isa.OpSub, rd, rs1, rs2) }

// Xor emits rd = rs1 ^ rs2.
func (f *FuncBuilder) Xor(rd, rs1, rs2 uint8) *FuncBuilder { return f.Op3(isa.OpXor, rd, rs1, rs2) }

// Mul emits rd = rs1 * rs2.
func (f *FuncBuilder) Mul(rd, rs1, rs2 uint8) *FuncBuilder { return f.Op3(isa.OpMul, rd, rs1, rs2) }

// Addi emits rd = rs1 + imm.
func (f *FuncBuilder) Addi(rd, rs1 uint8, imm int64) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Andi emits rd = rs1 & imm.
func (f *FuncBuilder) Andi(rd, rs1 uint8, imm int64) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpAndi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shli emits rd = rs1 << imm.
func (f *FuncBuilder) Shli(rd, rs1 uint8, imm int64) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpShli, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shri emits rd = rs1 >> imm (logical).
func (f *FuncBuilder) Shri(rd, rs1 uint8, imm int64) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpShri, Rd: rd, Rs1: rs1, Imm: imm})
}

// Movi emits rd = imm.
func (f *FuncBuilder) Movi(rd uint8, imm int64) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpMovi, Rd: rd, Imm: imm})
}

// Ld emits rd = mem64[rs1+imm].
func (f *FuncBuilder) Ld(rd, rs1 uint8, imm int64) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpLd, Rd: rd, Rs1: rs1, Imm: imm})
}

// St emits mem64[rs1+imm] = rs2.
func (f *FuncBuilder) St(rs2, rs1 uint8, imm int64) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpSt, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Lb emits rd = mem8[rs1+imm].
func (f *FuncBuilder) Lb(rd, rs1 uint8, imm int64) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpLb, Rd: rd, Rs1: rs1, Imm: imm})
}

// Sb emits mem8[rs1+imm] = rs2.
func (f *FuncBuilder) Sb(rs2, rs1 uint8, imm int64) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpSb, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Branch emits a conditional branch to a local label.
func (f *FuncBuilder) Branch(op isa.Op, rs1, rs2 uint8, label string) *FuncBuilder {
	if !op.IsCondBranch() {
		f.b.errs = append(f.b.errs, fmt.Errorf("asm: %v is not a branch", op))
	}
	return f.emitRef(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2}, label)
}

// Beq branches to label when rs1 == rs2.
func (f *FuncBuilder) Beq(rs1, rs2 uint8, label string) *FuncBuilder {
	return f.Branch(isa.OpBeq, rs1, rs2, label)
}

// Bne branches to label when rs1 != rs2.
func (f *FuncBuilder) Bne(rs1, rs2 uint8, label string) *FuncBuilder {
	return f.Branch(isa.OpBne, rs1, rs2, label)
}

// Blt branches to label when rs1 < rs2 (signed).
func (f *FuncBuilder) Blt(rs1, rs2 uint8, label string) *FuncBuilder {
	return f.Branch(isa.OpBlt, rs1, rs2, label)
}

// Bge branches to label when rs1 >= rs2 (signed).
func (f *FuncBuilder) Bge(rs1, rs2 uint8, label string) *FuncBuilder {
	return f.Branch(isa.OpBge, rs1, rs2, label)
}

// Jump emits an unconditional jump to a local label or function name.
func (f *FuncBuilder) Jump(label string) *FuncBuilder {
	return f.emitRef(isa.Inst{Op: isa.OpJal, Rd: isa.RegZero}, label)
}

// Call emits a call (jal ra) to a function name or local label.
func (f *FuncBuilder) Call(target string) *FuncBuilder {
	return f.emitRef(isa.Inst{Op: isa.OpJal, Rd: isa.RegRA}, target)
}

// CallIndirect emits jalr ra, imm(rs1).
func (f *FuncBuilder) CallIndirect(rs1 uint8, imm int64) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpJalr, Rd: isa.RegRA, Rs1: rs1, Imm: imm})
}

// Ret emits a function return.
func (f *FuncBuilder) Ret() *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: isa.RegRA})
}

// Wrpkru emits wrpkru rs1.
func (f *FuncBuilder) Wrpkru(rs1 uint8) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpWrpkru, Rs1: rs1})
}

// Rdpkru emits rdpkru rd.
func (f *FuncBuilder) Rdpkru(rd uint8) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpRdpkru, Rd: rd})
}

// Clflush emits clflush imm(rs1).
func (f *FuncBuilder) Clflush(rs1 uint8, imm int64) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpClflush, Rs1: rs1, Imm: imm})
}

// Rdcycle emits rdcycle rd.
func (f *FuncBuilder) Rdcycle(rd uint8) *FuncBuilder {
	return f.Emit(isa.Inst{Op: isa.OpRdcycle, Rd: rd})
}

// Link lays out all functions, resolves labels and calls to absolute
// addresses, and produces the executable Program.
func (b *Builder) Link() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	// Assign function base addresses.
	symbols := make(map[string]uint64, len(b.funcs))
	addr := b.codeBase
	for _, f := range b.funcs {
		symbols[f.name] = addr
		addr += uint64(len(f.insts)) * isa.InstBytes
	}
	entry, ok := symbols[b.entry]
	if !ok {
		return nil, fmt.Errorf("asm: entry function %q not defined", b.entry)
	}
	var insts []isa.Inst
	for _, f := range b.funcs {
		base := symbols[f.name]
		body := make([]isa.Inst, len(f.insts))
		copy(body, f.insts)
		for _, fx := range f.fixups {
			var target uint64
			if idx, ok := f.labels[fx.label]; ok {
				target = base + uint64(idx)*isa.InstBytes
			} else if t, ok := symbols[fx.label]; ok {
				target = t
			} else {
				return nil, fmt.Errorf("asm: undefined label %q in %s", fx.label, f.name)
			}
			body[fx.instIdx].Imm = int64(target)
		}
		insts = append(insts, body...)
	}
	data := append([]DataSeg(nil), b.data...)
	for _, ds := range b.dataSyms {
		target, ok := symbols[ds.fn]
		if !ok {
			return nil, fmt.Errorf("asm: data symbol references undefined function %q", ds.fn)
		}
		bts := make([]byte, 8)
		for i := 0; i < 8; i++ {
			bts[i] = byte(target >> (8 * i))
		}
		data = append(data, DataSeg{Addr: ds.addr, Bytes: bts})
	}
	return &Program{
		CodeBase: b.codeBase,
		Entry:    entry,
		Insts:    insts,
		Regions:  append([]Region(nil), b.regions...),
		Data:     data,
		InitRegs: b.initRegs,
		Symbols:  symbols,
	}, nil
}
