package asm

import (
	"fmt"
	"sort"
	"strings"

	"specmpk/internal/isa"
	"specmpk/internal/mem"
)

// Format renders a linked program back into the text-assembler syntax, so
// that Parse(Format(p)) reproduces the program exactly (the round-trip
// property the tests check). Control-flow targets become labels: the
// program's own symbols where available, synthetic local labels otherwise.
func Format(p *Program) (string, error) {
	// Reverse the symbol table and invent labels for anonymous targets.
	labels := make(map[uint64]string)
	for name, addr := range p.Symbols {
		labels[addr] = name
	}
	// Labels may sit one slot past the last instruction (a fall-off-end
	// target the parser accepts), hence <= rather than <.
	inText := func(addr uint64) bool {
		return addr >= p.CodeBase && addr <= p.CodeBase+p.CodeSize() &&
			(addr-p.CodeBase)%isa.InstBytes == 0
	}
	for i, in := range p.Insts {
		if in.Op.IsCondBranch() || in.Op == isa.OpJal {
			t := uint64(in.Imm)
			if !inText(t) {
				return "", fmt.Errorf("asm: instruction %d targets 0x%x outside the text segment", i, t)
			}
			if _, ok := labels[t]; !ok {
				labels[t] = fmt.Sprintf("L_%x", t)
			}
		}
	}
	if _, ok := labels[p.Entry]; !ok {
		if !inText(p.Entry) {
			return "", fmt.Errorf("asm: entry 0x%x outside the text segment", p.Entry)
		}
		labels[p.Entry] = "entry"
	}

	var b strings.Builder
	fmt.Fprintf(&b, ".code 0x%x\n", p.CodeBase)
	fmt.Fprintf(&b, ".entry %s\n", labels[p.Entry])
	for _, r := range p.Regions {
		fmt.Fprintf(&b, ".region %s 0x%x 0x%x %s %d\n",
			sanitizeName(r.Name), r.Base, r.Size, protString(r.Prot), r.PKey)
	}
	regs := make([]int, 0, len(p.InitRegs))
	for r := range p.InitRegs {
		regs = append(regs, int(r))
	}
	sort.Ints(regs)
	for _, r := range regs {
		fmt.Fprintf(&b, ".initreg r%d 0x%x\n", r, p.InitRegs[uint8(r)])
	}
	for _, d := range p.Data {
		fmt.Fprintf(&b, ".data 0x%x", d.Addr)
		for _, by := range d.Bytes {
			fmt.Fprintf(&b, " %02x", by)
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	for i, in := range p.Insts {
		addr := p.CodeBase + uint64(i)*isa.InstBytes
		if name, ok := labels[addr]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "    %s\n", renderInst(in, labels))
	}
	if name, ok := labels[p.CodeBase+p.CodeSize()]; ok {
		fmt.Fprintf(&b, "%s:\n", name)
	}
	return b.String(), nil
}

// renderInst is isa.Inst.String with control targets replaced by labels
// (the parser's input form).
func renderInst(in isa.Inst, labels map[uint64]string) string {
	switch {
	case in.Op.IsCondBranch():
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op.Name(), in.Rs1, in.Rs2, labels[uint64(in.Imm)])
	case in.Op == isa.OpJal:
		return fmt.Sprintf("%s r%d, %s", in.Op.Name(), in.Rd, labels[uint64(in.Imm)])
	}
	return in.String()
}

func protString(p mem.Prot) string {
	s := ""
	if p&mem.ProtRead != 0 {
		s += "r"
	}
	if p&mem.ProtWrite != 0 {
		s += "w"
	}
	if p&mem.ProtExec != 0 {
		s += "x"
	}
	if s == "" {
		s = "r" // the parser has no syntax for no-permission regions
	}
	return s
}

// sanitizeName keeps region names parseable (single token).
func sanitizeName(s string) string {
	if s == "" {
		return "region"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' {
			return '_'
		}
		return r
	}, s)
}
