package asm

import (
	"strings"
	"testing"

	"specmpk/internal/isa"
)

func linkOf(t *testing.T, f func(b *Builder)) *Program {
	t.Helper()
	b := NewBuilder(0x10000)
	f(b)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDisciplineCleanProgram(t *testing.T) {
	p := linkOf(t, func(b *Builder) {
		f := b.Func("main")
		f.Movi(9, 0x8)
		f.Wrpkru(9)
		f.Movi(10, 0)
		f.Nop() // unrelated instruction between movi and wrpkru is fine
		f.Wrpkru(10)
		f.Wrpkru(isa.RegZero) // r0 is a constant
		f.Halt()
	})
	if v := CheckWrpkruDiscipline(p); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestDisciplineFlagsLoadedValue(t *testing.T) {
	p := linkOf(t, func(b *Builder) {
		f := b.Func("main")
		f.Movi(4, 0x20000000)
		f.Ld(9, 4, 0) // PKRU value from memory: attacker-reachable
		f.Wrpkru(9)
		f.Halt()
	})
	v := CheckWrpkruDiscipline(p)
	if len(v) != 1 || !strings.Contains(v[0].Reason, "not a load-immediate") {
		t.Fatalf("violations: %v", v)
	}
	if !strings.Contains(v[0].String(), "wrpkru") {
		t.Fatalf("render: %s", v[0])
	}
}

func TestDisciplineFlagsBranchBetween(t *testing.T) {
	p := linkOf(t, func(b *Builder) {
		f := b.Func("main")
		f.Movi(9, 0x8)
		f.Beq(10, isa.RegZero, "skip")
		f.Addi(11, 11, 1)
		f.Label("skip")
		f.Wrpkru(9) // the branch join precedes the WRPKRU
		f.Halt()
	})
	v := CheckWrpkruDiscipline(p)
	if len(v) != 1 {
		t.Fatalf("violations: %v", v)
	}
	if !strings.Contains(v[0].Reason, "boundary") && !strings.Contains(v[0].Reason, "control flow") {
		t.Fatalf("unexpected reason: %v", v)
	}
}

func TestDisciplineFlagsComputedValue(t *testing.T) {
	p := linkOf(t, func(b *Builder) {
		f := b.Func("main")
		f.Movi(9, 4)
		f.Add(9, 9, 9)
		f.Wrpkru(9)
		f.Halt()
	})
	if v := CheckWrpkruDiscipline(p); len(v) != 1 {
		t.Fatalf("violations: %v", v)
	}
}

func TestDisciplineFlagsUndefinedSource(t *testing.T) {
	p := linkOf(t, func(b *Builder) {
		f := b.Func("main")
		f.Wrpkru(9)
		f.Halt()
	})
	v := CheckWrpkruDiscipline(p)
	if len(v) != 1 || !strings.Contains(v[0].Reason, "no defining write") {
		t.Fatalf("violations: %v", v)
	}
}
