// Package asm provides the program representation shared by the simulators,
// a programmatic assembly builder (used by the workload generator and the
// attack harness), and a small text assembler.
package asm

import (
	"fmt"
	"sort"

	"specmpk/internal/isa"
	"specmpk/internal/mem"
)

// Region describes one mapped virtual range of a program image and the
// protection key its pages carry.
type Region struct {
	Name string
	Base uint64
	Size uint64
	Prot mem.Prot
	PKey int
}

// DataSeg is a blob preloaded into memory before execution.
type DataSeg struct {
	Addr  uint64
	Bytes []byte
}

// Program is a fully linked executable image.
type Program struct {
	CodeBase uint64
	Entry    uint64
	Insts    []isa.Inst
	Regions  []Region
	Data     []DataSeg
	// InitRegs seeds architectural registers before execution (stack
	// pointer, shadow-stack pointer, globals base, ...).
	InitRegs map[uint8]uint64
	// Symbols maps function names to their addresses (diagnostics).
	Symbols map[string]uint64
}

// CodeSize returns the byte size of the text segment.
func (p *Program) CodeSize() uint64 {
	return uint64(len(p.Insts)) * isa.InstBytes
}

// InstAt returns the instruction at byte address pc, or false if pc is
// outside the text segment or misaligned.
func (p *Program) InstAt(pc uint64) (isa.Inst, bool) {
	if pc < p.CodeBase || (pc-p.CodeBase)%isa.InstBytes != 0 {
		return isa.Inst{}, false
	}
	idx := (pc - p.CodeBase) / isa.InstBytes
	if idx >= uint64(len(p.Insts)) {
		return isa.Inst{}, false
	}
	return p.Insts[idx], true
}

// Load maps the program image into a fresh address space: code pages
// (read+exec, pKey 0 — MPK does not govern fetches), each declared region,
// and the preloaded data segments. The encoded text is also written to
// memory so instruction fetch has real physical addresses to miss on.
func (p *Program) Load() (*mem.AddressSpace, error) {
	as := mem.NewAddressSpace()
	codeBytes := (p.CodeSize() + mem.PageSize - 1) &^ (mem.PageSize - 1)
	if codeBytes == 0 {
		codeBytes = mem.PageSize
	}
	as.Map(p.CodeBase, codeBytes, mem.ProtRX)
	// pKeys must be reserved before pkey_mprotect accepts them. Regions
	// name keys directly, so claim every key that appears.
	claimed := map[int]bool{0: true}
	for _, r := range p.Regions {
		if r.PKey != 0 && !claimed[r.PKey] {
			// Claim keys in ascending order below to keep allocation
			// deterministic; collected here first.
			claimed[r.PKey] = true
		}
	}
	keys := make([]int, 0, len(claimed))
	for k := range claimed {
		if k != 0 {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	allocated := map[int]bool{0: true}
	for _, want := range keys {
		for {
			k, err := as.PkeyAlloc()
			if err != nil {
				return nil, fmt.Errorf("asm: cannot allocate pkey %d: %v", want, err)
			}
			allocated[k] = true
			if k == want {
				break
			}
			if k > want {
				return nil, fmt.Errorf("asm: pkey %d unavailable", want)
			}
		}
	}
	for _, r := range p.Regions {
		if r.Size%mem.PageSize != 0 || r.Base%mem.PageSize != 0 {
			return nil, fmt.Errorf("asm: region %q not page aligned", r.Name)
		}
		as.Map(r.Base, r.Size, r.Prot)
		if r.PKey != 0 {
			if err := as.PkeyMprotect(r.Base, r.Size, r.Prot, r.PKey); err != nil {
				return nil, fmt.Errorf("asm: region %q: %v", r.Name, err)
			}
		}
	}
	// Write the encoded text. Code pages are R+X; use the kernel-style
	// writer which bypasses PTE write permission via a temporary flip.
	img := isa.EncodeProgram(p.Insts)
	if err := as.Mprotect(p.CodeBase, codeBytes, mem.ProtRW); err != nil {
		return nil, err
	}
	if err := as.WriteVirtBytes(p.CodeBase, img); err != nil {
		return nil, err
	}
	if err := as.Mprotect(p.CodeBase, codeBytes, mem.ProtRX); err != nil {
		return nil, err
	}
	for _, d := range p.Data {
		if err := as.WriteVirtBytes(d.Addr, d.Bytes); err != nil {
			return nil, fmt.Errorf("asm: data segment at 0x%x: %v", d.Addr, err)
		}
	}
	return as, nil
}

// Disassemble renders the program listing with addresses and symbols.
func (p *Program) Disassemble() string {
	rev := make(map[uint64]string, len(p.Symbols))
	for name, addr := range p.Symbols {
		rev[addr] = name
	}
	out := ""
	for i, in := range p.Insts {
		addr := p.CodeBase + uint64(i)*isa.InstBytes
		if name, ok := rev[addr]; ok {
			out += fmt.Sprintf("%s:\n", name)
		}
		out += fmt.Sprintf("  0x%06x  %s\n", addr, in)
	}
	return out
}
