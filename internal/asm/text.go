package asm

import (
	"fmt"
	"strconv"
	"strings"

	"specmpk/internal/isa"
	"specmpk/internal/mem"
)

// Parse assembles a text program. The syntax is one instruction or
// directive per line; "#" and ";" start comments. Labels ("name:") are
// global. Directives:
//
//	.code 0x10000                       text base (default 0x10000)
//	.entry main                         entry label (default "main")
//	.region name base size prot pkey    mapped range; prot in {r,rw,rx,rwx}
//	.data addr b0 b1 b2 ...             hex bytes preloaded at addr
//	.word addr v0 v1 ...                64-bit little-endian words at addr
//	.initreg reg value                  seed a register
//
// Pseudo-instructions: call <label> (jal ra), jmp <label> (jal r0),
// ret (jalr r0, 0(ra)).
func Parse(src string) (*Program, error) {
	p := &parser{
		prog: &Program{
			CodeBase: 0x10000,
			InitRegs: make(map[uint8]uint64),
			Symbols:  make(map[string]uint64),
		},
		labels: make(map[string]int),
		entry:  "main",
	}
	for i, raw := range strings.Split(src, "\n") {
		if err := p.line(raw); err != nil {
			return nil, fmt.Errorf("asm: line %d: %v", i+1, err)
		}
	}
	return p.finish()
}

type textFixup struct {
	inst  int
	label string
}

type parser struct {
	prog   *Program
	labels map[string]int
	fixups []textFixup
	entry  string
}

var regAlias = map[string]uint8{
	"zero": isa.RegZero, "ra": isa.RegRA, "sp": isa.RegSP, "ssp": isa.RegSSP,
	"gp": isa.RegGP, "a0": isa.RegA0, "a1": isa.RegA1, "a2": isa.RegA2,
	"a3": isa.RegA3,
}

func parseReg(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if r, ok := regAlias[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "t") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < 10 {
			return uint8(isa.RegT0 + n), nil
		}
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	iv := int64(v)
	if neg {
		iv = -iv
	}
	return iv, nil
}

// parseMemOperand handles "imm(rN)".
func parseMemOperand(s string) (uint8, int64, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	var imm int64
	var err error
	if open > 0 {
		if imm, err = parseInt(s[:open]); err != nil {
			return 0, 0, err
		}
	}
	reg, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return reg, imm, nil
}

func parseProt(s string) (mem.Prot, error) {
	var p mem.Prot
	for _, c := range s {
		switch c {
		case 'r':
			p |= mem.ProtRead
		case 'w':
			p |= mem.ProtWrite
		case 'x':
			p |= mem.ProtExec
		default:
			return 0, fmt.Errorf("bad prot %q", s)
		}
	}
	return p, nil
}

func (p *parser) line(raw string) error {
	if i := strings.IndexAny(raw, "#;"); i >= 0 {
		raw = raw[:i]
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, ".") {
		return p.directive(s)
	}
	for {
		colon := strings.IndexByte(s, ':')
		if colon < 0 {
			break
		}
		name := strings.TrimSpace(s[:colon])
		if name == "" || strings.ContainsAny(name, " \t") {
			return fmt.Errorf("bad label %q", name)
		}
		if _, dup := p.labels[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		p.labels[name] = len(p.prog.Insts)
		s = strings.TrimSpace(s[colon+1:])
		if s == "" {
			return nil
		}
	}
	return p.instruction(s)
}

func (p *parser) directive(s string) error {
	fields := strings.Fields(s)
	switch fields[0] {
	case ".code":
		if len(fields) != 2 {
			return fmt.Errorf(".code needs one argument")
		}
		v, err := parseInt(fields[1])
		if err != nil {
			return err
		}
		p.prog.CodeBase = uint64(v)
	case ".entry":
		if len(fields) != 2 {
			return fmt.Errorf(".entry needs one argument")
		}
		p.entry = fields[1]
	case ".region":
		if len(fields) != 6 {
			return fmt.Errorf(".region needs name base size prot pkey")
		}
		base, err := parseInt(fields[2])
		if err != nil {
			return err
		}
		size, err := parseInt(fields[3])
		if err != nil {
			return err
		}
		prot, err := parseProt(fields[4])
		if err != nil {
			return err
		}
		pkey, err := parseInt(fields[5])
		if err != nil {
			return err
		}
		p.prog.Regions = append(p.prog.Regions, Region{
			Name: fields[1], Base: uint64(base), Size: uint64(size),
			Prot: prot, PKey: int(pkey),
		})
	case ".data":
		if len(fields) < 3 {
			return fmt.Errorf(".data needs addr and bytes")
		}
		addr, err := parseInt(fields[1])
		if err != nil {
			return err
		}
		bytes := make([]byte, 0, len(fields)-2)
		for _, f := range fields[2:] {
			b, err := strconv.ParseUint(f, 16, 8)
			if err != nil {
				return fmt.Errorf("bad data byte %q", f)
			}
			bytes = append(bytes, byte(b))
		}
		p.prog.Data = append(p.prog.Data, DataSeg{Addr: uint64(addr), Bytes: bytes})
	case ".word":
		if len(fields) < 3 {
			return fmt.Errorf(".word needs addr and values")
		}
		addr, err := parseInt(fields[1])
		if err != nil {
			return err
		}
		var bytes []byte
		for _, f := range fields[2:] {
			v, err := parseInt(f)
			if err != nil {
				return err
			}
			for i := 0; i < 8; i++ {
				bytes = append(bytes, byte(uint64(v)>>(8*i)))
			}
		}
		p.prog.Data = append(p.prog.Data, DataSeg{Addr: uint64(addr), Bytes: bytes})
	case ".initreg":
		if len(fields) != 3 {
			return fmt.Errorf(".initreg needs reg value")
		}
		r, err := parseReg(fields[1])
		if err != nil {
			return err
		}
		v, err := parseInt(fields[2])
		if err != nil {
			return err
		}
		p.prog.InitRegs[r] = uint64(v)
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	return nil
}

func (p *parser) emit(in isa.Inst) { p.prog.Insts = append(p.prog.Insts, in) }

func (p *parser) emitRef(in isa.Inst, label string) {
	p.fixups = append(p.fixups, textFixup{inst: len(p.prog.Insts), label: label})
	p.emit(in)
}

func (p *parser) instruction(s string) error {
	var mnem, rest string
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnem, rest = s[:i], strings.TrimSpace(s[i+1:])
	} else {
		mnem = s
	}
	args := []string{}
	if rest != "" {
		for _, a := range strings.Split(rest, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}

	switch mnem {
	case "call":
		if err := need(1); err != nil {
			return err
		}
		p.emitRef(isa.Inst{Op: isa.OpJal, Rd: isa.RegRA}, args[0])
		return nil
	case "jmp":
		if err := need(1); err != nil {
			return err
		}
		p.emitRef(isa.Inst{Op: isa.OpJal, Rd: isa.RegZero}, args[0])
		return nil
	case "ret":
		if err := need(0); err != nil {
			return err
		}
		p.emit(isa.Inst{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: isa.RegRA})
		return nil
	}

	op, ok := isa.OpByName(mnem)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	switch op {
	case isa.OpNop, isa.OpHalt:
		if err := need(0); err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op})
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpMul, isa.OpDiv:
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli, isa.OpShri:
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseInt(args[2])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
	case isa.OpMovi:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseInt(args[1])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op, Rd: rd, Imm: imm})
	case isa.OpLd, isa.OpLb:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, imm, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
	case isa.OpSt, isa.OpSb:
		if err := need(2); err != nil {
			return err
		}
		rs2, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, imm, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm})
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		if err := need(3); err != nil {
			return err
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return err
		}
		p.emitRef(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2}, args[2])
	case isa.OpJal:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		p.emitRef(isa.Inst{Op: op, Rd: rd}, args[1])
	case isa.OpJalr:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, imm, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
	case isa.OpWrpkru:
		if err := need(1); err != nil {
			return err
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op, Rs1: rs1})
	case isa.OpRdpkru, isa.OpRdcycle:
		if err := need(1); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op, Rd: rd})
	case isa.OpClflush:
		if err := need(1); err != nil {
			return err
		}
		rs1, imm, err := parseMemOperand(args[0])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op, Rs1: rs1, Imm: imm})
	default:
		return fmt.Errorf("unhandled opcode %v", op)
	}
	return nil
}

func (p *parser) finish() (*Program, error) {
	for name, idx := range p.labels {
		p.prog.Symbols[name] = p.prog.CodeBase + uint64(idx)*isa.InstBytes
	}
	for _, fx := range p.fixups {
		addr, ok := p.prog.Symbols[fx.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", fx.label)
		}
		p.prog.Insts[fx.inst].Imm = int64(addr)
	}
	entry, ok := p.prog.Symbols[p.entry]
	if !ok {
		return nil, fmt.Errorf("asm: entry label %q not defined", p.entry)
	}
	p.prog.Entry = entry
	return p.prog, nil
}
