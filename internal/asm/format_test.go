package asm

import (
	"math/rand"
	"testing"

	"specmpk/internal/isa"
	"specmpk/internal/mem"
)

// roundTrip asserts Parse(Format(p)) reproduces p.
func roundTrip(t *testing.T, p *Program) {
	t.Helper()
	src, err := Format(p)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(Format):\n%s\n%v", src, err)
	}
	if q.CodeBase != p.CodeBase || q.Entry != p.Entry {
		t.Fatalf("base/entry mismatch: %x/%x vs %x/%x", q.CodeBase, q.Entry, p.CodeBase, p.Entry)
	}
	if len(q.Insts) != len(p.Insts) {
		t.Fatalf("inst count %d vs %d", len(q.Insts), len(p.Insts))
	}
	for i := range p.Insts {
		if q.Insts[i] != p.Insts[i] {
			t.Fatalf("inst %d: %v vs %v", i, q.Insts[i], p.Insts[i])
		}
	}
	if len(q.Regions) != len(p.Regions) {
		t.Fatalf("region count")
	}
	for i := range p.Regions {
		a, b := q.Regions[i], p.Regions[i]
		if a.Base != b.Base || a.Size != b.Size || a.Prot != b.Prot || a.PKey != b.PKey {
			t.Fatalf("region %d: %+v vs %+v", i, a, b)
		}
	}
	if len(q.InitRegs) != len(p.InitRegs) {
		t.Fatalf("initregs")
	}
	for r, v := range p.InitRegs {
		if q.InitRegs[r] != v {
			t.Fatalf("initreg r%d", r)
		}
	}
	if len(q.Data) != len(p.Data) {
		t.Fatalf("data segs")
	}
	for i := range p.Data {
		if q.Data[i].Addr != p.Data[i].Addr || string(q.Data[i].Bytes) != string(p.Data[i].Bytes) {
			t.Fatalf("data seg %d", i)
		}
	}
}

func TestFormatRoundTripHandBuilt(t *testing.T) {
	b := NewBuilder(0x20000)
	b.Region("heap", 0x30000000, mem.PageSize, mem.ProtRW, 0)
	b.Region("shadow", 0x60000000, 2*mem.PageSize, mem.ProtRead, 1)
	b.Data(0x30000000, []byte{1, 2, 3})
	b.InitReg(isa.RegSP, 0x7fff0000)
	f := b.Func("main")
	f.Movi(9, -5)
	f.Label("loop")
	f.Addi(9, 9, 1)
	f.Bne(9, isa.RegZero, "loop")
	f.Call("leaf")
	f.Wrpkru(9)
	f.Halt()
	g := b.Func("leaf")
	g.Rdpkru(10)
	g.Clflush(4, 64)
	g.Ret()
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, p)
}

// TestFormatRoundTripRandom fuzzes the round trip with random straight-line
// programs plus random in-range branches.
func TestFormatRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(60)
		insts := make([]isa.Inst, n)
		for i := range insts {
			switch r.Intn(7) {
			case 0:
				insts[i] = isa.Inst{Op: isa.OpMovi, Rd: uint8(1 + r.Intn(31)), Imm: r.Int63() - r.Int63()}
			case 1:
				insts[i] = isa.Inst{Op: isa.OpAdd, Rd: uint8(1 + r.Intn(31)), Rs1: uint8(r.Intn(32)), Rs2: uint8(r.Intn(32))}
			case 2:
				insts[i] = isa.Inst{Op: isa.OpLd, Rd: uint8(1 + r.Intn(31)), Rs1: uint8(r.Intn(32)), Imm: int64(r.Intn(4096))}
			case 3:
				insts[i] = isa.Inst{Op: isa.OpSt, Rs1: uint8(r.Intn(32)), Rs2: uint8(r.Intn(32)), Imm: -int64(r.Intn(4096))}
			case 4:
				target := 0x10000 + uint64(r.Intn(n))*isa.InstBytes
				insts[i] = isa.Inst{Op: isa.OpBeq, Rs1: uint8(r.Intn(32)), Rs2: uint8(r.Intn(32)), Imm: int64(target)}
			case 5:
				target := 0x10000 + uint64(r.Intn(n))*isa.InstBytes
				insts[i] = isa.Inst{Op: isa.OpJal, Rd: uint8(r.Intn(32)), Imm: int64(target)}
			case 6:
				insts[i] = isa.Inst{Op: isa.OpWrpkru, Rs1: uint8(r.Intn(32))}
			}
		}
		p := &Program{
			CodeBase: 0x10000,
			Entry:    0x10000,
			Insts:    insts,
			InitRegs: map[uint8]uint64{2: uint64(r.Int63())},
			Symbols:  map[string]uint64{"main": 0x10000},
		}
		roundTrip(t, p)
	}
}

func TestFormatRejectsWildTargets(t *testing.T) {
	p := &Program{
		CodeBase: 0x10000,
		Entry:    0x10000,
		Insts: []isa.Inst{
			{Op: isa.OpBeq, Imm: 0xdead0000},
			{Op: isa.OpHalt},
		},
		Symbols: map[string]uint64{"main": 0x10000},
	}
	if _, err := Format(p); err == nil {
		t.Fatal("out-of-text branch target must be rejected")
	}
}

func TestFormatOnGeneratedCatalogueProgram(t *testing.T) {
	// The workload generator's output must round-trip too; exercised via a
	// representative here (the full-catalogue check lives in workload's
	// tests if needed). Use the sample text program to avoid an import
	// cycle: text -> Program -> Format -> Parse.
	p, err := Parse(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, p)
}
