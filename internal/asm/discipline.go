package asm

import (
	"fmt"

	"specmpk/internal/isa"
)

// The paper's security analysis (§IX-B) assumes compiler support that makes
// every WRPKRU's value independent of speculation: the implicit source is
// produced by a load-immediate, with no branch between the immediate and
// the WRPKRU. CheckWrpkruDiscipline is that compiler check, run over linked
// programs: the workload generator and the attack gadgets are verified to
// satisfy it (tests), and specmpk-sim warns when a hand-written program
// does not.

// Violation describes one WRPKRU that breaks the discipline.
type Violation struct {
	PC     uint64
	Inst   isa.Inst
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("0x%x: %s: %s", v.PC, v.Inst, v.Reason)
}

// CheckWrpkruDiscipline scans the program for WRPKRU instructions whose
// source register is not an immediate produced in the same basic block.
// The analysis is conservative and purely static:
//
//   - walking backwards from the WRPKRU, the first write to its source
//     register must be an OpMovi;
//   - no label target, branch, call, or return may intervene (a control-flow
//     join could make the value path-dependent);
//   - no memory load may define the register (attacker-reachable data).
func CheckWrpkruDiscipline(p *Program) []Violation {
	// Collect every branch/jump target so basic-block boundaries are known.
	leaders := make(map[uint64]bool)
	for _, in := range p.Insts {
		if in.Op.IsCondBranch() || in.Op == isa.OpJal {
			leaders[uint64(in.Imm)] = true
		}
	}
	for _, addr := range p.Symbols {
		leaders[addr] = true
	}

	var out []Violation
	for i, in := range p.Insts {
		if in.Op != isa.OpWrpkru {
			continue
		}
		pc := p.CodeBase + uint64(i)*isa.InstBytes
		v := findImmediate(p, i, in.Rs1, leaders)
		if v != "" {
			out = append(out, Violation{PC: pc, Inst: in, Reason: v})
		}
	}
	return out
}

// findImmediate walks backwards from instruction index i looking for the
// defining write of register r; returns "" when the discipline holds.
func findImmediate(p *Program, i int, r uint8, leaders map[uint64]bool) string {
	if r == isa.RegZero {
		return "" // constant zero is trivially speculation-independent
	}
	for j := i - 1; j >= 0; j-- {
		pc := p.CodeBase + uint64(j)*isa.InstBytes
		in := p.Insts[j]
		if in.Op.IsControl() || in.Op == isa.OpHalt {
			return fmt.Sprintf("control flow at 0x%x precedes the defining write of r%d", pc, r)
		}
		if in.WritesReg() && in.Rd == r {
			if in.Op == isa.OpMovi {
				return ""
			}
			return fmt.Sprintf("r%d defined by %q at 0x%x, not a load-immediate", r, in.String(), pc)
		}
		// Falling into this instruction from elsewhere makes the walk
		// unsound; stop at block leaders.
		if leaders[pc] {
			return fmt.Sprintf("basic-block boundary at 0x%x precedes the defining write of r%d", pc, r)
		}
	}
	return fmt.Sprintf("no defining write of r%d before the WRPKRU", r)
}
