package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpNamesRoundTrip(t *testing.T) {
	for i := 0; i < NumOps; i++ {
		op := Op(i)
		got, ok := OpByName(op.Name())
		if !ok {
			t.Fatalf("OpByName(%q) not found", op.Name())
		}
		if got != op {
			t.Fatalf("OpByName(%q) = %v, want %v", op.Name(), got, op)
		}
	}
}

func TestOpByNameUnknown(t *testing.T) {
	if _, ok := OpByName("bogus"); ok {
		t.Fatal("OpByName accepted unknown mnemonic")
	}
}

func TestOpValid(t *testing.T) {
	if !OpWrpkru.Valid() {
		t.Fatal("wrpkru should be valid")
	}
	if Op(200).Valid() {
		t.Fatal("op 200 should be invalid")
	}
}

func TestClassifiers(t *testing.T) {
	cases := []struct {
		op                         Op
		load, store, cond, control bool
	}{
		{OpLd, true, false, false, false},
		{OpLb, true, false, false, false},
		{OpSt, false, true, false, false},
		{OpSb, false, true, false, false},
		{OpBeq, false, false, true, true},
		{OpBge, false, false, true, true},
		{OpJal, false, false, false, true},
		{OpJalr, false, false, false, true},
		{OpAdd, false, false, false, false},
		{OpWrpkru, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsLoad() != c.load {
			t.Errorf("%v IsLoad = %v", c.op, c.op.IsLoad())
		}
		if c.op.IsStore() != c.store {
			t.Errorf("%v IsStore = %v", c.op, c.op.IsStore())
		}
		if c.op.IsMem() != (c.load || c.store) {
			t.Errorf("%v IsMem = %v", c.op, c.op.IsMem())
		}
		if c.op.IsCondBranch() != c.cond {
			t.Errorf("%v IsCondBranch = %v", c.op, c.op.IsCondBranch())
		}
		if c.op.IsControl() != c.control {
			t.Errorf("%v IsControl = %v", c.op, c.op.IsControl())
		}
	}
}

func TestMemBytes(t *testing.T) {
	if OpLd.MemBytes() != 8 || OpSt.MemBytes() != 8 {
		t.Fatal("word ops must be 8 bytes")
	}
	if OpLb.MemBytes() != 1 || OpSb.MemBytes() != 1 {
		t.Fatal("byte ops must be 1 byte")
	}
	if OpAdd.MemBytes() != 0 {
		t.Fatal("non-memory op must report 0")
	}
}

func TestWritesReg(t *testing.T) {
	if !(Inst{Op: OpAdd, Rd: 5}).WritesReg() {
		t.Fatal("add writes rd")
	}
	if (Inst{Op: OpAdd, Rd: RegZero}).WritesReg() {
		t.Fatal("write to r0 is discarded")
	}
	if (Inst{Op: OpSt, Rd: 5}).WritesReg() {
		t.Fatal("store writes no register")
	}
	if !(Inst{Op: OpRdpkru, Rd: 5}).WritesReg() {
		t.Fatal("rdpkru writes rd")
	}
	if !(Inst{Op: OpJal, Rd: RegRA}).WritesReg() {
		t.Fatal("call writes link register")
	}
	if (Inst{Op: OpBeq, Rd: 7}).WritesReg() {
		t.Fatal("branch writes no register")
	}
}

func TestReadsOperands(t *testing.T) {
	if !(Inst{Op: OpWrpkru, Rs1: 4}).ReadsRs1() {
		t.Fatal("wrpkru reads rs1")
	}
	if (Inst{Op: OpWrpkru}).ReadsRs2() {
		t.Fatal("wrpkru does not read rs2")
	}
	if (Inst{Op: OpMovi}).ReadsRs1() {
		t.Fatal("movi reads no sources")
	}
	if !(Inst{Op: OpSt}).ReadsRs2() {
		t.Fatal("store reads data from rs2")
	}
	if !(Inst{Op: OpBeq}).ReadsRs1() || !(Inst{Op: OpBeq}).ReadsRs2() {
		t.Fatal("branch reads both sources")
	}
	if (Inst{Op: OpJal}).ReadsRs1() {
		t.Fatal("jal reads no register source")
	}
	if !(Inst{Op: OpJalr}).ReadsRs1() {
		t.Fatal("jalr reads rs1")
	}
}

func TestCallReturnPredicates(t *testing.T) {
	call := Inst{Op: OpJal, Rd: RegRA, Imm: 0x10000}
	if !call.IsCall() {
		t.Fatal("jal ra is a call")
	}
	jump := Inst{Op: OpJal, Rd: RegZero, Imm: 0x10000}
	if jump.IsCall() {
		t.Fatal("jal r0 is a plain jump")
	}
	ret := Inst{Op: OpJalr, Rd: RegZero, Rs1: RegRA}
	if !ret.IsReturn() {
		t.Fatal("jalr r0, (ra) is a return")
	}
	icall := Inst{Op: OpJalr, Rd: RegRA, Rs1: RegT0}
	if !icall.IsCall() || icall.IsReturn() {
		t.Fatal("jalr ra, (t0) is an indirect call")
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpNop}, "nop"},
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -8}, "addi r1, r2, -8"},
		{Inst{Op: OpMovi, Rd: 9, Imm: 42}, "movi r9, 42"},
		{Inst{Op: OpLd, Rd: 9, Rs1: 2, Imm: 16}, "ld r9, 16(r2)"},
		{Inst{Op: OpSt, Rs1: 2, Rs2: 9, Imm: 16}, "st r9, 16(r2)"},
		{Inst{Op: OpWrpkru, Rs1: 5}, "wrpkru r5"},
		{Inst{Op: OpRdpkru, Rd: 5}, "rdpkru r5"},
		{Inst{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 0x100}, "beq r1, r2, 0x100"},
		{Inst{Op: OpJal, Rd: 1, Imm: 0x200}, "jal r1, 0x200"},
		{Inst{Op: OpClflush, Rs1: 4, Imm: 64}, "clflush 64(r4)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func randInst(r *rand.Rand) Inst {
	return Inst{
		Op:  Op(r.Intn(NumOps)),
		Rd:  uint8(r.Intn(NumRegs)),
		Rs1: uint8(r.Intn(NumRegs)),
		Rs2: uint8(r.Intn(NumRegs)),
		Imm: r.Int63() - r.Int63(),
	}
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInst(r)
		var buf [InstBytes]byte
		Encode(buf[:], in)
		out, err := Decode(buf[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	var buf [InstBytes]byte
	buf[0] = 250
	if _, err := Decode(buf[:]); err == nil {
		t.Fatal("expected error for invalid opcode")
	} else if !strings.Contains(err.Error(), "invalid opcode") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDecodeRejectsBadRegister(t *testing.T) {
	var buf [InstBytes]byte
	Encode(buf[:], Inst{Op: OpAdd})
	buf[2] = NumRegs
	if _, err := Decode(buf[:]); err == nil {
		t.Fatal("expected error for out-of-range register")
	}
}

func TestDecodeRejectsReservedBytes(t *testing.T) {
	var buf [InstBytes]byte
	Encode(buf[:], Inst{Op: OpAdd})
	buf[5] = 1
	if _, err := Decode(buf[:]); err == nil {
		t.Fatal("expected error for nonzero reserved bytes")
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, err := Decode(make([]byte, 3)); err == nil {
		t.Fatal("expected error for short buffer")
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	prog := make([]Inst, 257)
	for i := range prog {
		prog[i] = randInst(r)
	}
	img := EncodeProgram(prog)
	if len(img) != len(prog)*InstBytes {
		t.Fatalf("image size %d", len(img))
	}
	got, err := DecodeProgram(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Fatalf("inst %d mismatch: %v vs %v", i, got[i], prog[i])
		}
	}
}

func TestDecodeProgramErrors(t *testing.T) {
	if _, err := DecodeProgram(make([]byte, 5)); err == nil {
		t.Fatal("expected error for ragged image")
	}
	img := EncodeProgram([]Inst{{Op: OpNop}, {Op: OpAdd}})
	img[InstBytes] = 251 // corrupt second instruction opcode
	_, err := DecodeProgram(img)
	be, ok := err.(*ErrBadEncoding)
	if !ok {
		t.Fatalf("want *ErrBadEncoding, got %v", err)
	}
	if be.Off < InstBytes {
		t.Fatalf("error offset %d should point into second instruction", be.Off)
	}
}
