// Package isa defines the instruction set used throughout the SpecMPK
// reproduction: a small 64-bit RISC-style ISA extended with the MPK
// permission-update instructions WRPKRU and RDPKRU.
//
// The real MPK extension lives on x86-64 where WRPKRU copies the implicit
// EAX register into PKRU. Our ISA makes the source register explicit
// (WRPKRU rs1); the serialization/speculation semantics studied by the paper
// are unchanged by this difference, and it keeps the renaming story in the
// simulator honest (PKRU is still an implicit destination).
package isa

import "fmt"

// Op enumerates every opcode in the ISA.
type Op uint8

const (
	// OpNop does nothing. Also used as the WRPKRU stub when measuring
	// compiler-transformation overhead (Fig. 4 methodology).
	OpNop Op = iota
	// OpHalt stops the machine; the program's exit point.
	OpHalt

	// Register-register ALU operations: rd = rs1 <op> rs2.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpMul
	OpDiv

	// Register-immediate ALU operations: rd = rs1 <op> imm.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri

	// OpMovi loads a 64-bit immediate: rd = imm.
	OpMovi

	// OpLd loads 8 bytes: rd = mem[rs1+imm].
	OpLd
	// OpSt stores 8 bytes: mem[rs1+imm] = rs2.
	OpSt
	// OpLb loads 1 byte zero-extended: rd = mem8[rs1+imm].
	OpLb
	// OpSb stores 1 byte: mem8[rs1+imm] = rs2.
	OpSb

	// Conditional branches to the absolute byte address in Imm.
	OpBeq
	OpBne
	OpBlt
	OpBge

	// OpJal jumps to the absolute address Imm, writing the return address
	// (pc+InstBytes) to rd. rd = RegZero makes it a plain jump.
	OpJal
	// OpJalr jumps to rs1+imm, writing the return address to rd. With
	// rd = RegZero and rs1 = RegRA it is a function return.
	OpJalr

	// OpWrpkru copies rs1's low 32 bits into the PKRU register. Serializing
	// on the baseline microarchitecture; speculative under SpecMPK.
	OpWrpkru
	// OpRdpkru copies PKRU into rd. Serialized in all modes (paper §V-C6).
	OpRdpkru

	// OpClflush evicts the line containing rs1+imm from all cache levels.
	// Used by the flush+reload attack harness.
	OpClflush
	// OpRdcycle reads the current cycle counter into rd, letting attack
	// code time its own loads like rdtsc.
	OpRdcycle

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// InstBytes is the size of one encoded instruction in instruction memory.
// Program counters advance in units of InstBytes.
const InstBytes = 16

// NumRegs is the number of architectural general-purpose registers.
// Register 0 is hardwired to zero.
const NumRegs = 32

// Conventional register assignments used by the assembler and the workload
// generator.
const (
	RegZero = 0 // always zero
	RegRA   = 1 // return address (link register)
	RegSP   = 2 // stack pointer
	RegSSP  = 3 // shadow-stack pointer (the paper's R15 analogue)
	RegGP   = 4 // global/data pointer
	RegA0   = 5 // first argument / return value
	RegA1   = 6
	RegA2   = 7
	RegA3   = 8
	RegT0   = 9 // temporaries T0..T9 are r9..r18
	RegS0   = 19
)

// Inst is one decoded instruction. Branch and Jal targets are absolute byte
// addresses in Imm (the assembler resolves labels before emission).
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int64
}

var opNames = [NumOps]string{
	OpNop: "nop", OpHalt: "halt",
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpMul: "mul", OpDiv: "div",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpShli: "shli", OpShri: "shri", OpMovi: "movi",
	OpLd: "ld", OpSt: "st", OpLb: "lb", OpSb: "sb",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJal: "jal", OpJalr: "jalr",
	OpWrpkru: "wrpkru", OpRdpkru: "rdpkru",
	OpClflush: "clflush", OpRdcycle: "rdcycle",
}

// Name returns the mnemonic for op, or "op<N>" for undefined values.
func (o Op) Name() string {
	if int(o) < NumOps && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// OpByName maps a mnemonic back to its opcode. ok is false for unknown names.
func OpByName(name string) (Op, bool) {
	for i := 0; i < NumOps; i++ {
		if opNames[i] == name {
			return Op(i), true
		}
	}
	return OpNop, false
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return int(o) < NumOps }

// IsLoad reports whether o reads data memory.
func (o Op) IsLoad() bool { return o == OpLd || o == OpLb }

// IsStore reports whether o writes data memory.
func (o Op) IsStore() bool { return o == OpSt || o == OpSb }

// IsMem reports whether o accesses data memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// MemBytes returns the access width of a memory op (0 for non-memory ops).
func (o Op) MemBytes() int {
	switch o {
	case OpLd, OpSt:
		return 8
	case OpLb, OpSb:
		return 1
	}
	return 0
}

// IsCondBranch reports whether o is a conditional branch.
func (o Op) IsCondBranch() bool {
	return o == OpBeq || o == OpBne || o == OpBlt || o == OpBge
}

// IsControl reports whether o can redirect the program counter.
func (o Op) IsControl() bool {
	return o.IsCondBranch() || o == OpJal || o == OpJalr
}

// IsALU reports whether o is executed on an ALU (including Movi and Rdcycle,
// which occupy an ALU slot for one cycle).
func (o Op) IsALU() bool {
	switch o {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv,
		OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpMovi, OpRdcycle:
		return true
	}
	return false
}

// WritesReg reports whether the instruction architecturally writes Rd.
// Writes to RegZero are discarded but still allocate a rename in the
// pipeline for simplicity; callers that care use this predicate on the
// instruction, not just the opcode.
func (i Inst) WritesReg() bool {
	if i.Rd == RegZero {
		return false
	}
	switch {
	case i.Op.IsALU(), i.Op.IsLoad():
		return true
	case i.Op == OpJal, i.Op == OpJalr, i.Op == OpRdpkru:
		return true
	}
	return false
}

// ReadsRs1 reports whether the instruction reads Rs1.
func (i Inst) ReadsRs1() bool {
	switch i.Op {
	case OpNop, OpHalt, OpMovi, OpJal, OpRdpkru, OpRdcycle:
		return false
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv,
		OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri,
		OpLd, OpSt, OpLb, OpSb, OpBeq, OpBne, OpBlt, OpBge,
		OpJalr, OpWrpkru, OpClflush:
		return true
	}
	return false
}

// ReadsRs2 reports whether the instruction reads Rs2.
func (i Inst) ReadsRs2() bool {
	switch i.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv,
		OpSt, OpSb, OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsCall reports whether the instruction is a call (a jump that links).
func (i Inst) IsCall() bool {
	return (i.Op == OpJal || i.Op == OpJalr) && i.Rd != RegZero
}

// IsReturn reports whether the instruction is a function return
// (indirect jump through the link register without linking).
func (i Inst) IsReturn() bool {
	return i.Op == OpJalr && i.Rd == RegZero && i.Rs1 == RegRA
}

// String renders the instruction in assembly syntax.
func (i Inst) String() string {
	n := i.Op.Name()
	switch i.Op {
	case OpNop, OpHalt:
		return n
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv:
		return fmt.Sprintf("%s r%d, r%d, r%d", n, i.Rd, i.Rs1, i.Rs2)
	case OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri:
		return fmt.Sprintf("%s r%d, r%d, %d", n, i.Rd, i.Rs1, i.Imm)
	case OpMovi:
		return fmt.Sprintf("%s r%d, %d", n, i.Rd, i.Imm)
	case OpLd, OpLb:
		return fmt.Sprintf("%s r%d, %d(r%d)", n, i.Rd, i.Imm, i.Rs1)
	case OpSt, OpSb:
		return fmt.Sprintf("%s r%d, %d(r%d)", n, i.Rs2, i.Imm, i.Rs1)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, 0x%x", n, i.Rs1, i.Rs2, uint64(i.Imm))
	case OpJal:
		return fmt.Sprintf("%s r%d, 0x%x", n, i.Rd, uint64(i.Imm))
	case OpJalr:
		return fmt.Sprintf("%s r%d, %d(r%d)", n, i.Rd, i.Imm, i.Rs1)
	case OpWrpkru:
		return fmt.Sprintf("%s r%d", n, i.Rs1)
	case OpRdpkru, OpRdcycle:
		return fmt.Sprintf("%s r%d", n, i.Rd)
	case OpClflush:
		return fmt.Sprintf("%s %d(r%d)", n, i.Imm, i.Rs1)
	}
	return fmt.Sprintf("%s r%d, r%d, r%d, %d", n, i.Rd, i.Rs1, i.Rs2, i.Imm)
}
