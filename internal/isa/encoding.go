package isa

import (
	"encoding/binary"
	"fmt"
)

// Encoding layout (little-endian), 16 bytes per instruction:
//
//	byte 0      opcode
//	byte 1      rd
//	byte 2      rs1
//	byte 3      rs2
//	bytes 4-7   reserved (must be zero; gives decode a cheap integrity check)
//	bytes 8-15  imm (int64)

// ErrBadEncoding is wrapped by decode errors.
type ErrBadEncoding struct {
	Off    int
	Reason string
}

func (e *ErrBadEncoding) Error() string {
	return fmt.Sprintf("isa: bad encoding at offset %d: %s", e.Off, e.Reason)
}

// Encode writes the 16-byte encoding of in into dst.
// It panics if dst is shorter than InstBytes.
func Encode(dst []byte, in Inst) {
	_ = dst[InstBytes-1]
	dst[0] = byte(in.Op)
	dst[1] = in.Rd
	dst[2] = in.Rs1
	dst[3] = in.Rs2
	binary.LittleEndian.PutUint32(dst[4:8], 0)
	binary.LittleEndian.PutUint64(dst[8:16], uint64(in.Imm))
}

// Decode parses one instruction from src.
func Decode(src []byte) (Inst, error) {
	if len(src) < InstBytes {
		return Inst{}, &ErrBadEncoding{Reason: "short buffer"}
	}
	op := Op(src[0])
	if !op.Valid() {
		return Inst{}, &ErrBadEncoding{Reason: fmt.Sprintf("invalid opcode %d", src[0])}
	}
	if binary.LittleEndian.Uint32(src[4:8]) != 0 {
		return Inst{}, &ErrBadEncoding{Off: 4, Reason: "reserved bytes nonzero"}
	}
	in := Inst{
		Op:  op,
		Rd:  src[1],
		Rs1: src[2],
		Rs2: src[3],
		Imm: int64(binary.LittleEndian.Uint64(src[8:16])),
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return Inst{}, &ErrBadEncoding{Off: 1, Reason: "register out of range"}
	}
	return in, nil
}

// EncodeProgram encodes a full instruction sequence.
func EncodeProgram(insts []Inst) []byte {
	out := make([]byte, len(insts)*InstBytes)
	for i, in := range insts {
		Encode(out[i*InstBytes:], in)
	}
	return out
}

// DecodeProgram decodes a byte image produced by EncodeProgram.
func DecodeProgram(image []byte) ([]Inst, error) {
	if len(image)%InstBytes != 0 {
		return nil, &ErrBadEncoding{Reason: "image not a multiple of instruction size"}
	}
	out := make([]Inst, len(image)/InstBytes)
	for i := range out {
		in, err := Decode(image[i*InstBytes:])
		if err != nil {
			if be, ok := err.(*ErrBadEncoding); ok {
				be.Off += i * InstBytes
			}
			return nil, err
		}
		out[i] = in
	}
	return out, nil
}
