package isa

import (
	"bytes"
	"testing"
)

// FuzzDecode checks the decoder never panics and that every successfully
// decoded instruction re-encodes to the identical byte image.
func FuzzDecode(f *testing.F) {
	var seed [InstBytes]byte
	Encode(seed[:], Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3})
	f.Add(seed[:])
	Encode(seed[:], Inst{Op: OpWrpkru, Rs1: 26})
	f.Add(seed[:])
	f.Add([]byte{255, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Decode(data)
		if err != nil {
			return
		}
		var out [InstBytes]byte
		Encode(out[:], in)
		if !bytes.Equal(out[:], data[:InstBytes]) {
			t.Fatalf("decode/encode mismatch: %x vs %x", out, data[:InstBytes])
		}
		_ = in.String() // must never panic
	})
}
