package bpred

import (
	"fmt"
	"testing"

	"specmpk/internal/stats"
)

func TestProviderCountersSumToLookups(t *testing.T) {
	pat := []bool{true, true, false, true, false, false, true}
	p := NewTAGE()
	train(p, func(i int) (uint64, bool) { return 0x2000, pat[i%len(pat)] }, 2000, 2000)

	if p.Lookups != 4000 {
		t.Fatalf("Lookups = %d, want 4000", p.Lookups)
	}
	sum := p.BaseProvides
	for _, n := range p.TableProvides {
		sum += n
	}
	if sum != p.Lookups {
		t.Fatalf("provider counters sum to %d, want Lookups %d (base %d, tagged %v)",
			sum, p.Lookups, p.BaseProvides, p.TableProvides)
	}
	// A history-dependent pattern must pull predictions off the base table.
	if p.BaseProvides == p.Lookups {
		t.Fatal("tagged tables never provided a prediction for a periodic pattern")
	}
}

func TestBTBCounters(t *testing.T) {
	b := NewBTB(64)
	b.Lookup(0x100) // cold miss
	b.Update(0x100, 0x200)
	if _, ok := b.Lookup(0x100); !ok {
		t.Fatal("BTB missed after update")
	}
	if b.Lookups != 2 || b.Hits != 1 {
		t.Fatalf("lookups=%d hits=%d, want 2/1", b.Lookups, b.Hits)
	}
}

func TestRASCounters(t *testing.T) {
	r := NewRAS(8)
	cp := r.Checkpoint()
	r.Push(0x100)
	r.Push(0x200)
	if got := r.Pop(); got != 0x200 {
		t.Fatalf("Pop = %#x, want 0x200", got)
	}
	r.Restore(cp)
	if r.Pushes != 2 || r.Pops != 1 || r.Restores != 1 {
		t.Fatalf("pushes=%d pops=%d restores=%d, want 2/1/1", r.Pushes, r.Pops, r.Restores)
	}
}

func TestRegisterExposesAllComponents(t *testing.T) {
	p := NewTAGE()
	b := NewBTB(64)
	s := NewRAS(8)
	reg := stats.NewRegistry()
	p.Register(reg, "bpred.tage")
	b.Register(reg, "bpred.btb")
	s.Register(reg, "bpred.ras")

	p.Predict(0x1000)
	b.Lookup(0x1000)
	s.Push(0x1004)

	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"bpred.tage.lookups": 1,
		"bpred.btb.lookups":  1,
		"bpred.ras.pushes":   1,
	} {
		if got := snap.Number(name); got != float64(want) {
			t.Errorf("%s = %v, want %d", name, got, want)
		}
	}
	// Every tagged table gets its own provider counter.
	for i := 0; i < numTagged; i++ {
		name := fmt.Sprintf("bpred.tage.t%d_provides", i)
		if _, ok := snap.Get(name); !ok {
			t.Fatalf("tagged table %d has no provider metric %q", i, name)
		}
	}
}
