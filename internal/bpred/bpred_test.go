package bpred

import (
	"math/rand"
	"testing"
)

// train runs the predictor on a branch-outcome generator and returns the
// misprediction rate over the last `measure` outcomes.
func train(t *TAGE, gen func(i int) (pc uint64, taken bool), warm, measure int) float64 {
	mis := 0
	for i := 0; i < warm+measure; i++ {
		pc, taken := gen(i)
		pred, st := t.Predict(pc)
		t.SpeculativeUpdate(taken) // assume perfect same-cycle resolution
		if pred != taken {
			t.Recover(st, taken)
			if i >= warm {
				mis++
			}
		}
		t.Update(pc, st, taken)
	}
	return float64(mis) / float64(measure)
}

func TestAlwaysTakenLearned(t *testing.T) {
	p := NewTAGE()
	rate := train(p, func(int) (uint64, bool) { return 0x1000, true }, 64, 1000)
	if rate > 0.01 {
		t.Fatalf("always-taken misprediction rate %.3f", rate)
	}
}

func TestAlternatingLearned(t *testing.T) {
	p := NewTAGE()
	rate := train(p, func(i int) (uint64, bool) { return 0x1000, i%2 == 0 }, 200, 2000)
	if rate > 0.05 {
		t.Fatalf("alternating pattern misprediction rate %.3f", rate)
	}
}

func TestLongPeriodicPatternLearned(t *testing.T) {
	// Period-7 pattern requires history, defeating a bimodal predictor.
	pat := []bool{true, true, false, true, false, false, true}
	p := NewTAGE()
	rate := train(p, func(i int) (uint64, bool) { return 0x2000, pat[i%len(pat)] }, 3000, 3000)
	if rate > 0.10 {
		t.Fatalf("period-7 pattern misprediction rate %.3f", rate)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	outcomes := make([]bool, 8192)
	for i := range outcomes {
		outcomes[i] = r.Intn(2) == 0
	}
	p := NewTAGE()
	rate := train(p, func(i int) (uint64, bool) { return 0x3000, outcomes[i%len(outcomes)] }, 1000, 4000)
	if rate < 0.25 {
		t.Fatalf("random branch rate %.3f suspiciously low", rate)
	}
}

func TestMultipleBranchesIndependent(t *testing.T) {
	p := NewTAGE()
	gen := func(i int) (uint64, bool) {
		if i%2 == 0 {
			return 0x1000, true
		}
		return 0x2040, false
	}
	rate := train(p, gen, 200, 2000)
	if rate > 0.02 {
		t.Fatalf("two-branch misprediction rate %.3f", rate)
	}
}

func TestMispredictCounter(t *testing.T) {
	p := NewTAGE()
	train(p, func(i int) (uint64, bool) { return 0x99, i%3 == 0 }, 0, 100)
	if p.Lookups != 100 {
		t.Fatalf("lookups = %d", p.Lookups)
	}
	if p.Mispredicts == 0 {
		t.Fatal("expected some mispredictions during warmup")
	}
}

func TestRecoverRestoresHistory(t *testing.T) {
	p := NewTAGE()
	p.SpeculativeUpdate(true)
	p.SpeculativeUpdate(false)
	_, st := p.Predict(0x10)
	before := p.ghist
	// Wrong-path history pollution.
	p.SpeculativeUpdate(true)
	p.SpeculativeUpdate(true)
	p.SpeculativeUpdate(false)
	p.Recover(st, true)
	if p.ghist != before<<1|1 {
		t.Fatalf("history after recover = %b, want %b", p.ghist, before<<1|1)
	}
}

func TestFold(t *testing.T) {
	if fold(0, 10, 64) != 0 {
		t.Fatal("fold of zero history must be zero")
	}
	// Folding must use only `length` bits.
	a := fold(0xFFFF, 8, 8)
	b := fold(0xF0FFFF, 8, 8)
	if a != b {
		t.Fatal("fold must mask history to length")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(16)
	if _, ok := b.Lookup(0x40); ok {
		t.Fatal("cold BTB must miss")
	}
	b.Update(0x40, 0x999)
	tgt, ok := b.Lookup(0x40)
	if !ok || tgt != 0x999 {
		t.Fatalf("lookup = %x, %v", tgt, ok)
	}
	// Conflicting PC (same index, different tag) must miss, not alias.
	conflict := uint64(0x40 + 16*4)
	if _, ok := b.Lookup(conflict); ok {
		t.Fatal("tag mismatch must miss")
	}
	b.Update(conflict, 0x111)
	if _, ok := b.Lookup(0x40); ok {
		t.Fatal("evicted entry must miss")
	}
	if b.Lookups != 4 || b.Hits != 1 {
		t.Fatalf("stats lookups=%d hits=%d", b.Lookups, b.Hits)
	}
}

func TestBTBBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBTB(12)
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	r.Push(100)
	r.Push(200)
	if r.Pop() != 200 || r.Pop() != 100 {
		t.Fatal("LIFO order violated")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if r.Pop() != 3 || r.Pop() != 2 {
		t.Fatal("wrap order")
	}
	// Underflow yields the stale overwritten slot — garbage but no panic.
	_ = r.Pop()
	_ = r.Pop()
}

func TestRASCheckpointRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(100)
	r.Push(200)
	cp := r.Checkpoint()
	// Wrong path: pop twice, push once.
	r.Pop()
	r.Pop()
	r.Push(999)
	r.Restore(cp)
	if got := r.Pop(); got != 200 {
		t.Fatalf("post-restore pop = %d, want 200", got)
	}
	if got := r.Pop(); got != 100 {
		t.Fatalf("post-restore pop = %d, want 100", got)
	}
}

func TestRASCheckpointProtectsAgainstClobber(t *testing.T) {
	r := NewRAS(4)
	r.Push(1)
	r.Push(2)
	cp := r.Checkpoint()
	// A wrong-path push clobbers the slot above top; Restore must repair it.
	r.Push(777)
	r.Restore(cp)
	r.Push(42) // reuses the repaired slot
	if r.Pop() != 42 || r.Pop() != 2 || r.Pop() != 1 {
		t.Fatal("clobbered slot not repaired")
	}
}

func TestRASBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRAS(0)
}

// Property-style test: nested call/return sequences of random depth always
// predict correctly when no speculation is involved.
func TestRASNestedCalls(t *testing.T) {
	r := NewRAS(32)
	rng := rand.New(rand.NewSource(3))
	var model []uint64
	for i := 0; i < 10000; i++ {
		if len(model) < 30 && (len(model) == 0 || rng.Intn(2) == 0) {
			addr := rng.Uint64()
			model = append(model, addr)
			r.Push(addr)
		} else {
			want := model[len(model)-1]
			model = model[:len(model)-1]
			if got := r.Pop(); got != want {
				t.Fatalf("iteration %d: pop = %x, want %x", i, got, want)
			}
		}
	}
}
