package bpred

import (
	"fmt"

	"specmpk/internal/stats"
)

// Register publishes the direction predictor's counters under prefix
// (conventionally "bpred.tage").
func (t *TAGE) Register(r *stats.Registry, prefix string) {
	r.Counter(prefix+".lookups", "direction predictions made", func() uint64 { return t.Lookups })
	r.Counter(prefix+".mispredicts", "resolved direction mispredictions", func() uint64 { return t.Mispredicts })
	r.Counter(prefix+".base_provides", "predictions served by the bimodal base", func() uint64 { return t.BaseProvides })
	for i := range t.TableProvides {
		i := i
		r.Counter(fmt.Sprintf("%s.t%d_provides", prefix, i),
			fmt.Sprintf("predictions served by tagged table %d (hist %d)", i, histLens[i]),
			func() uint64 { return t.TableProvides[i] })
	}
	r.Formula(prefix+".mispredict_rate", "mispredictions per lookup",
		func(get func(string) float64) float64 {
			return ratio(get(prefix+".mispredicts"), get(prefix+".lookups"))
		})
}

// Register publishes the BTB's counters under prefix ("bpred.btb").
func (b *BTB) Register(r *stats.Registry, prefix string) {
	r.Counter(prefix+".lookups", "target lookups", func() uint64 { return b.Lookups })
	r.Counter(prefix+".hits", "target lookup hits", func() uint64 { return b.Hits })
	r.Counter(prefix+".mispredicts", "indirect-target mispredictions", func() uint64 { return b.Mispredicts })
	r.Formula(prefix+".hit_rate", "hits per lookup",
		func(get func(string) float64) float64 {
			return ratio(get(prefix+".hits"), get(prefix+".lookups"))
		})
}

// Register publishes the RAS's counters under prefix ("bpred.ras").
func (s *RAS) Register(r *stats.Registry, prefix string) {
	r.Counter(prefix+".pushes", "speculative call pushes", func() uint64 { return s.Pushes })
	r.Counter(prefix+".pops", "speculative return pops", func() uint64 { return s.Pops })
	r.Counter(prefix+".restores", "checkpoint restores on squash", func() uint64 { return s.Restores })
	r.Counter(prefix+".mispredicts", "return-target mispredictions", func() uint64 { return s.Mispredicts })
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
