// Package bpred implements the front-end prediction structures of the
// Table III configuration: an LTAGE-style conditional direction predictor
// (bimodal base + tagged tables with geometrically increasing history
// lengths), a 4096-entry branch target buffer, and a 32-entry return
// address stack with checkpoint-based recovery.
package bpred

// ---------------------------------------------------------------------------
// TAGE direction predictor

const (
	numTagged  = 4
	baseBits   = 12 // 4096-entry bimodal base
	taggedBits = 10 // 1024 entries per tagged table
	tagBits    = 9
	maxHistLen = 64
)

var histLens = [numTagged]int{4, 12, 28, 64}

type taggedEntry struct {
	tag uint32
	ctr int8  // 3-bit signed counter: -4..3, taken when >= 0
	use uint8 // 2-bit useful counter
}

// TAGE is the direction predictor.
type TAGE struct {
	base   []int8 // 2-bit counters: -2..1, taken when >= 0
	tables [numTagged][]taggedEntry
	// ghist is the speculative global history (youngest bit at position 0).
	ghist uint64

	Lookups     uint64
	Mispredicts uint64
	// BaseProvides counts predictions served by the bimodal base table;
	// TableProvides[i] counts predictions served by tagged table i. They sum
	// to Lookups, attributing each prediction to the component that made it.
	BaseProvides  uint64
	TableProvides [numTagged]uint64
}

// NewTAGE returns a zeroed predictor.
func NewTAGE() *TAGE {
	t := &TAGE{base: make([]int8, 1<<baseBits)}
	for i := range t.tables {
		t.tables[i] = make([]taggedEntry, 1<<taggedBits)
	}
	return t
}

// DirState is the snapshot a branch carries for update and squash recovery.
type DirState struct {
	ghist    uint64
	provider int // -1 = base
	altPred  bool
	provPred bool
	provIdx  uint32
	provTag  uint32
	baseIdx  uint32
	Pred     bool
}

func fold(h uint64, bits, length int) uint32 {
	if length > maxHistLen {
		length = maxHistLen
	}
	mask := uint64(1)<<uint(length) - 1
	h &= mask
	var f uint32
	for length > 0 {
		f ^= uint32(h) & (1<<uint(bits) - 1)
		h >>= uint(bits)
		length -= bits
	}
	return f
}

func (t *TAGE) indexTag(pc uint64, table int) (uint32, uint32) {
	hl := histLens[table]
	idx := (uint32(pc>>2) ^ fold(t.ghist, taggedBits, hl) ^ uint32(table)*0x9e37) & (1<<taggedBits - 1)
	tag := (uint32(pc>>2) ^ fold(t.ghist, tagBits, hl) ^ uint32(table)*0x7f4b) & (1<<tagBits - 1)
	return idx, tag
}

// Predict returns the predicted direction for the conditional branch at pc
// along with the state needed to update or recover later.
func (t *TAGE) Predict(pc uint64) (bool, DirState) {
	t.Lookups++
	st := DirState{ghist: t.ghist, provider: -1}
	st.baseIdx = uint32(pc>>2) & (1<<baseBits - 1)
	basePred := t.base[st.baseIdx] >= 0
	st.altPred = basePred
	pred := basePred
	for i := numTagged - 1; i >= 0; i-- {
		idx, tag := t.indexTag(pc, i)
		e := t.tables[i][idx]
		if e.tag == tag {
			if st.provider == -1 {
				st.provider = i
				st.provIdx = idx
				st.provTag = tag
				st.provPred = e.ctr >= 0
				pred = st.provPred
			} else {
				// Second-longest match becomes the alternate prediction.
				st.altPred = e.ctr >= 0
				break
			}
		}
	}
	st.Pred = pred
	if st.provider >= 0 {
		t.TableProvides[st.provider]++
	} else {
		t.BaseProvides++
	}
	return pred, st
}

// SpeculativeUpdate shifts the predicted direction into the global history.
// Call immediately after Predict, at fetch time.
func (t *TAGE) SpeculativeUpdate(taken bool) {
	t.ghist <<= 1
	if taken {
		t.ghist |= 1
	}
}

// Recover restores the speculative history from a branch's snapshot and
// re-applies the branch's actual outcome. Call on a squash.
func (t *TAGE) Recover(st DirState, actual bool) {
	t.ghist = st.ghist<<1 | b2u(actual)
}

// Update trains the predictor with the branch's resolved outcome.
func (t *TAGE) Update(pc uint64, st DirState, taken bool) {
	if st.Pred != taken {
		t.Mispredicts++
	}
	// Train the provider (or the base table).
	if st.provider >= 0 {
		e := &t.tables[st.provider][st.provIdx]
		if e.tag == st.provTag {
			e.ctr = satInc(e.ctr, taken, -4, 3)
			if st.provPred != st.altPred {
				if st.provPred == taken && e.use < 3 {
					e.use++
				} else if st.provPred != taken && e.use > 0 {
					e.use--
				}
			}
		}
	} else {
		t.base[st.baseIdx] = satInc(t.base[st.baseIdx], taken, -2, 1)
	}
	// On a misprediction, try to allocate in a longer-history table.
	if st.Pred != taken && st.provider < numTagged-1 {
		t.allocate(pc, st, taken)
	}
}

func (t *TAGE) allocate(pc uint64, st DirState, taken bool) {
	// Temporarily restore the history the prediction was made with so the
	// allocated entry's index matches future lookups on the same path.
	saved := t.ghist
	t.ghist = st.ghist
	defer func() { t.ghist = saved }()

	for i := st.provider + 1; i < numTagged; i++ {
		idx, tag := t.indexTag(pc, i)
		e := &t.tables[i][idx]
		if e.use == 0 {
			*e = taggedEntry{tag: tag, ctr: ctrInit(taken)}
			return
		}
	}
	// No free entry: decay usefulness along the allocation path.
	for i := st.provider + 1; i < numTagged; i++ {
		idx, _ := t.indexTag(pc, i)
		if e := &t.tables[i][idx]; e.use > 0 {
			e.use--
		}
	}
}

func ctrInit(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}

func satInc(c int8, up bool, lo, hi int8) int8 {
	if up {
		if c < hi {
			return c + 1
		}
		return c
	}
	if c > lo {
		return c - 1
	}
	return c
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Branch target buffer

// BTB caches branch/jump targets, indexed and tagged by PC.
type BTB struct {
	entries []btbEntry
	mask    uint64

	Lookups uint64
	Hits    uint64
	// Mispredicts counts indirect-target mispredictions charged to the BTB
	// (resolved by the pipeline at branch resolution).
	Mispredicts uint64
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// NewBTB builds a direct-mapped BTB with n entries (power of two).
func NewBTB(n int) *BTB {
	if n <= 0 || n&(n-1) != 0 {
		panic("bpred: BTB size must be a positive power of two")
	}
	return &BTB{entries: make([]btbEntry, n), mask: uint64(n - 1)}
}

// Lookup returns the predicted target for pc, if any.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	b.Lookups++
	e := b.entries[(pc>>2)&b.mask]
	if e.valid && e.tag == pc {
		b.Hits++
		return e.target, true
	}
	return 0, false
}

// Update installs or refreshes the target for pc.
func (b *BTB) Update(pc, target uint64) {
	b.entries[(pc>>2)&b.mask] = btbEntry{tag: pc, target: target, valid: true}
}

// ---------------------------------------------------------------------------
// Return address stack

// MaxRAS is the largest supported return-address stack.
const MaxRAS = 64

// RAS is a circular return-address stack. Because it is updated
// speculatively at fetch, each in-flight control instruction carries a
// checkpoint that Restore uses on a squash. The checkpoint is a full copy:
// wrong-path pop/push sequences can corrupt arbitrary slots below the saved
// top, which partial checkpoints cannot repair, and at 32 entries the copy
// is cheap.
type RAS struct {
	stack [MaxRAS]uint64
	size  int
	top   int // index of the most recent push

	Pushes   uint64
	Pops     uint64
	Restores uint64
	// Mispredicts counts return-target mispredictions charged to the RAS
	// (resolved by the pipeline at branch resolution).
	Mispredicts uint64
}

// RASCheckpoint snapshots the stack for exact recovery.
type RASCheckpoint struct {
	Top   int
	Stack [MaxRAS]uint64
}

// NewRAS builds a stack with n entries (n <= MaxRAS).
func NewRAS(n int) *RAS {
	if n <= 0 || n > MaxRAS {
		panic("bpred: RAS size must be in 1..MaxRAS")
	}
	return &RAS{size: n, top: n - 1}
}

// Checkpoint captures the current state for later Restore.
func (r *RAS) Checkpoint() RASCheckpoint {
	return RASCheckpoint{Top: r.top, Stack: r.stack}
}

// Push records a return address (at a call).
func (r *RAS) Push(addr uint64) {
	r.Pushes++
	r.top = (r.top + 1) % r.size
	r.stack[r.top] = addr
}

// Pop predicts the target of a return.
func (r *RAS) Pop() uint64 {
	r.Pops++
	addr := r.stack[r.top]
	r.top--
	if r.top < 0 {
		r.top += r.size
	}
	return addr
}

// Restore rewinds to a checkpoint taken before the squashed region.
func (r *RAS) Restore(cp RASCheckpoint) {
	r.Restores++
	r.top = cp.Top
	r.stack = cp.Stack
}
