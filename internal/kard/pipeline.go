package kard

import (
	"specmpk/internal/asm"
	"specmpk/internal/isa"
	"specmpk/internal/mem"
	"specmpk/internal/mpk"
	"specmpk/internal/pipeline"
)

// PipelineResult is the outcome of running the Kard protocol on the
// cycle-level machine — the §IX-D argument that SpecMPK can replace MPK for
// this non-security use case because the disabling update is always
// captured in the WRPKRU-window and the precise fault still fires at
// retirement.
type PipelineResult struct {
	Races    []Race
	Faults   int
	Counter  uint64 // final value of the shared counter
	Finished bool
}

const lockVar = lockRegion + 16 // current-lock word the handler reads

// buildPipelineScenario emits a single-threaded program that enters two
// critical sections. Kard's instrumentation is visible in the code: lock
// acquisition records the lock id and locks every shared-object key down
// with a WRPKRU; the first object access in each section faults.
func buildPipelineScenario(sameLock bool) (*asm.Program, error) {
	b := asm.NewBuilder(0x10000)
	b.Region("locks", lockRegion, mem.PageSize, mem.ProtRW, 0)
	b.Region("objA", objARegion, mem.PageSize, mem.ProtRW, objAKey)

	lockdown := int64(mpk.AllowAll.WithKey(objAKey, mpk.Perm{AD: true}))

	f := b.Func("main")
	f.Movi(4, lockRegion)
	f.Movi(5, objARegion)
	f.Movi(26, lockdown)

	section := func(lock int64) {
		f.Movi(9, lock)
		f.St(9, 4, 16) // lockVar = lock (the acquire)
		f.Wrpkru(26)   // lock all shared objects down
		f.Ld(10, 5, 0) // first touch faults; handler associates + grants
		f.Addi(10, 10, 1)
		f.St(10, 5, 0)
		f.St(isa.RegZero, 4, 16) // release
	}
	section(1)
	secondLock := int64(1)
	if !sameLock {
		secondLock = 2
	}
	section(secondLock)
	f.Halt()
	return b.Link()
}

// RunPipelineScenario executes the protocol on the given microarchitecture.
func RunPipelineScenario(mode pipeline.Mode, sameLock bool) (*PipelineResult, error) {
	prog, err := buildPipelineScenario(sameLock)
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Mode = mode
	m, err := pipeline.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	res := &PipelineResult{}
	objLock := map[int]int{}
	m.FaultHandler = func(f *mem.Fault, pkru *mpk.PKRU) pipeline.FaultAction {
		if f.Kind != mem.FaultPkey || f.PKey != objAKey {
			return pipeline.FaultStop
		}
		res.Faults++
		// The fault delivers at retirement, so every older store — in
		// particular the lock-id store — has committed: the handler reads
		// an architecturally precise lock word even on SpecMPK.
		lockWord, err := m.AS.ReadVirt64(lockVar)
		if err != nil {
			return pipeline.FaultStop
		}
		lock := int(lockWord)
		if owner, known := objLock[f.PKey]; !known {
			objLock[f.PKey] = lock
		} else if owner != lock {
			res.Races = append(res.Races, Race{
				PKey: f.PKey, HeldLock: lock, OwnLock: owner, Addr: f.Addr,
			})
		}
		*pkru = pkru.WithKey(f.PKey, mpk.Perm{})
		return pipeline.FaultRetry
	}
	if err := m.Run(10_000_000); err != nil {
		return nil, err
	}
	res.Finished = m.Halted()
	res.Counter, _ = m.AS.ReadVirt64(objARegion)
	return res, nil
}
