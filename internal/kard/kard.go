// Package kard reproduces the paper's §IX-D non-security use case: Kard-style
// dynamic data-race detection built on MPK protection faults (Ahmad et al.,
// ASPLOS'21). Each shared object lives under its own protection key; a
// thread entering a critical section has every object key access-disabled in
// its per-thread PKRU, so the first access to each object faults. The fault
// handler associates the object with the lock the thread holds and grants
// access; an access to the same object under a *different* lock is an
// inconsistent-lock-usage data race.
//
// The detector runs on the functional simulator (multi-threaded, per-thread
// PKRU, fault hooks). §IX-D's point — that SpecMPK preserves this usage
// because the WRPKRU-window always captures the disabling update before the
// access issues — is demonstrated separately by the pipeline tests; here we
// exercise the software protocol itself.
package kard

import (
	"fmt"

	"specmpk/internal/asm"
	"specmpk/internal/funcsim"
	"specmpk/internal/isa"
	"specmpk/internal/mem"
	"specmpk/internal/mpk"
)

// NoLock marks a thread outside any critical section.
const NoLock = -1

// Race is one detected inconsistent-lock usage.
type Race struct {
	PKey     int // the shared object's protection key
	Thread   int
	HeldLock int // lock held at the racing access
	OwnLock  int // lock the object was first associated with
	Addr     uint64
}

func (r Race) String() string {
	return fmt.Sprintf("race: object pkey %d accessed under lock %d by thread %d (owned by lock %d) at 0x%x",
		r.PKey, r.HeldLock, r.Thread, r.OwnLock, r.Addr)
}

// UnlockedAccess is an access to a shared object outside any critical
// section — also a bug Kard surfaces.
type UnlockedAccess struct {
	PKey   int
	Thread int
	Addr   uint64
}

// Detector wires the Kard protocol onto a functional machine.
type Detector struct {
	M *funcsim.Machine

	// lockAddrs maps a lock word's address to its lock id. A store of 1 is
	// acquire; a store of 0 is release.
	lockAddrs map[uint64]int
	// objKeys is the set of protection keys that guard shared objects.
	objKeys map[int]bool

	held    map[int]int // thread id -> held lock (NoLock when none)
	objLock map[int]int // object pkey -> owning lock

	Races    []Race
	Unlocked []UnlockedAccess
	Faults   int
}

// Attach installs the detector on m. lockAddrs maps lock-word addresses to
// lock ids; objKeys lists the protection keys of shared objects.
func Attach(m *funcsim.Machine, lockAddrs map[uint64]int, objKeys []int) *Detector {
	d := &Detector{
		M:         m,
		lockAddrs: lockAddrs,
		objKeys:   make(map[int]bool, len(objKeys)),
		held:      make(map[int]int),
		objLock:   make(map[int]int),
	}
	for _, k := range objKeys {
		d.objKeys[k] = true
	}
	for _, t := range m.Threads {
		d.held[t.ID] = NoLock
		d.lockdown(t)
	}
	m.OnInst = d.onInst
	m.FaultHandler = d.onFault
	return d
}

// lockdown disables every shared-object key in the thread's PKRU.
func (d *Detector) lockdown(t *funcsim.Thread) {
	for k := range d.objKeys {
		t.PKRU = t.PKRU.WithKey(k, mpk.Perm{AD: true})
	}
}

func (d *Detector) onInst(t *funcsim.Thread, pc uint64, in isa.Inst) {
	if !in.Op.IsStore() {
		return
	}
	addr := t.Regs[in.Rs1] + uint64(in.Imm)
	if in.Rs1 == isa.RegZero {
		addr = uint64(in.Imm)
	}
	lock, ok := d.lockAddrs[addr]
	if !ok {
		return
	}
	val := t.Regs[in.Rs2]
	if in.Rs2 == isa.RegZero {
		val = 0
	}
	if val != 0 {
		// Acquire: enter the critical section with all objects locked
		// down, so the first touch of each object faults and reveals the
		// (lock, object) association.
		d.held[t.ID] = lock
		d.lockdown(t)
	} else {
		d.held[t.ID] = NoLock
		d.lockdown(t)
	}
}

func (d *Detector) onFault(t *funcsim.Thread, f *mem.Fault) funcsim.FaultAction {
	if f.Kind != mem.FaultPkey || !d.objKeys[f.PKey] {
		return funcsim.FaultStop
	}
	d.Faults++
	lock := d.held[t.ID]
	if lock == NoLock {
		d.Unlocked = append(d.Unlocked, UnlockedAccess{PKey: f.PKey, Thread: t.ID, Addr: f.Addr})
	} else if owner, known := d.objLock[f.PKey]; !known {
		d.objLock[f.PKey] = lock
	} else if owner != lock {
		d.Races = append(d.Races, Race{
			PKey: f.PKey, Thread: t.ID, HeldLock: lock, OwnLock: owner, Addr: f.Addr,
		})
	}
	// Grant access and retry, exactly like Kard's trap handler.
	t.PKRU = t.PKRU.WithKey(f.PKey, mpk.Perm{})
	return funcsim.FaultRetry
}

// Scenario memory layout.
const (
	lockRegion = 0x20000000
	objARegion = 0x60000000
	objBRegion = 0x61000000
	objAKey    = 1
	objBKey    = 2
	lock1Addr  = lockRegion
	lock2Addr  = lockRegion + 8
)

// BuildScenario assembles a two-thread program. Thread 0 updates shared
// object A under lock 1. Thread 1 updates A under lock 1 when sameLock is
// true (clean) or under lock 2 when false (inconsistent lock usage — the
// race Kard detects).
func BuildScenario(sameLock bool) (*asm.Program, error) {
	b := asm.NewBuilder(0x10000)
	b.Region("locks", lockRegion, mem.PageSize, mem.ProtRW, 0)
	b.Region("objA", objARegion, mem.PageSize, mem.ProtRW, objAKey)
	b.Region("objB", objBRegion, mem.PageSize, mem.ProtRW, objBKey)

	emitWorker := func(name string, lockAddr int64, iters int64, slot int64) {
		f := b.Func(name)
		f.Movi(4, lockRegion)
		f.Movi(5, objARegion)
		f.Movi(9, iters)
		f.Label("loop")
		// acquire(lock)
		f.Movi(10, 1)
		f.St(10, isa.RegZero, lockAddr)
		// critical section: read-modify-write the shared counter
		f.Ld(11, 5, slot)
		f.Addi(11, 11, 1)
		f.St(11, 5, slot)
		// release(lock)
		f.St(isa.RegZero, isa.RegZero, lockAddr)
		f.Addi(9, 9, -1)
		f.Bne(9, isa.RegZero, "loop")
		f.Halt()
	}
	emitWorker("main", lock1Addr, 20, 0)
	second := int64(lock1Addr)
	if !sameLock {
		second = lock2Addr
	}
	emitWorker("worker", second, 20, 0)
	return b.Link()
}

// RunScenario builds and executes the scenario under the detector and
// returns it for inspection.
func RunScenario(sameLock bool) (*Detector, error) {
	prog, err := BuildScenario(sameLock)
	if err != nil {
		return nil, err
	}
	m, err := funcsim.New(prog)
	if err != nil {
		return nil, err
	}
	m.AddThread(prog.Symbols["worker"])
	det := Attach(m,
		map[uint64]int{lock1Addr: 1, lock2Addr: 2},
		[]int{objAKey, objBKey})
	if err := m.Run(1_000_000, 4); err != nil {
		return nil, err
	}
	return det, nil
}
