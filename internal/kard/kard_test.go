package kard

import (
	"strings"
	"testing"

	"specmpk/internal/asm"
	"specmpk/internal/funcsim"
	"specmpk/internal/mem"
	"specmpk/internal/pipeline"
)

func TestConsistentLocksNoRace(t *testing.T) {
	det, err := RunScenario(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Races) != 0 {
		t.Fatalf("consistent locking flagged races: %v", det.Races)
	}
	if det.Faults == 0 {
		t.Fatal("the protocol runs on faults; none observed")
	}
	if len(det.Unlocked) != 0 {
		t.Fatalf("unexpected unlocked accesses: %v", det.Unlocked)
	}
	// Both threads completed their 20 increments each; the interleaved
	// final value is at least the per-thread count (lost updates are
	// possible — that is what locks are supposed to prevent — but the
	// counter must have moved).
	v, err := det.M.AS.ReadVirt64(objARegion)
	if err != nil {
		t.Fatal(err)
	}
	if v < 20 || v > 40 {
		t.Fatalf("counter = %d", v)
	}
}

func TestInconsistentLocksDetected(t *testing.T) {
	det, err := RunScenario(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Races) == 0 {
		t.Fatal("inconsistent locking must be detected")
	}
	r := det.Races[0]
	if r.PKey != objAKey {
		t.Fatalf("race on wrong object: %+v", r)
	}
	if r.HeldLock == r.OwnLock {
		t.Fatalf("race locks must differ: %+v", r)
	}
	if !strings.Contains(r.String(), "race: object pkey 1") {
		t.Fatalf("race string: %s", r)
	}
	// Detection must not break the program: both threads halt normally.
	for _, th := range det.M.Threads {
		if !th.Halted || th.Fault != nil {
			t.Fatalf("thread %d did not complete cleanly", th.ID)
		}
	}
}

func TestUnlockedAccessFlagged(t *testing.T) {
	// A thread touching a shared object without holding any lock.
	b := progBuilder(t)
	f := b.Func("main")
	f.Movi(5, objARegion)
	f.Ld(11, 5, 0) // no acquire first
	f.Halt()
	prog, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	m, err := funcsim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	det := Attach(m, map[uint64]int{lock1Addr: 1}, []int{objAKey})
	if err := m.Run(1000, 1); err != nil {
		t.Fatal(err)
	}
	if len(det.Unlocked) != 1 || det.Unlocked[0].PKey != objAKey {
		t.Fatalf("unlocked accesses: %v", det.Unlocked)
	}
}

func TestNonObjectFaultStops(t *testing.T) {
	// Faults unrelated to shared objects must still terminate the thread.
	b := progBuilder(t)
	f := b.Func("main")
	f.Movi(5, 0x70000000) // unmapped
	f.Ld(11, 5, 0)
	f.Halt()
	prog, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	m, err := funcsim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	Attach(m, map[uint64]int{lock1Addr: 1}, []int{objAKey})
	if err := m.Run(1000, 1); err == nil {
		t.Fatal("page fault must surface")
	}
}

// progBuilder starts an ad-hoc program with the scenario's memory layout.
func progBuilder(t *testing.T) *asm.Builder {
	t.Helper()
	b := asm.NewBuilder(0x10000)
	b.Region("locks", lockRegion, mem.PageSize, mem.ProtRW, 0)
	b.Region("objA", objARegion, mem.PageSize, mem.ProtRW, objAKey)
	return b
}

func TestPipelineScenarioAcrossMicroarchitectures(t *testing.T) {
	for _, mode := range []pipeline.Mode{
		pipeline.ModeSerialized, pipeline.ModeNonSecure, pipeline.ModeSpecMPK,
	} {
		clean, err := RunPipelineScenario(mode, true)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !clean.Finished || len(clean.Races) != 0 {
			t.Fatalf("%v: clean run: finished=%v races=%v", mode, clean.Finished, clean.Races)
		}
		if clean.Faults != 2 {
			t.Fatalf("%v: want one fault per critical section, got %d", mode, clean.Faults)
		}
		if clean.Counter != 2 {
			t.Fatalf("%v: counter = %d", mode, clean.Counter)
		}

		racy, err := RunPipelineScenario(mode, false)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !racy.Finished || len(racy.Races) != 1 {
			t.Fatalf("%v: racy run: finished=%v races=%v", mode, racy.Finished, racy.Races)
		}
		r := racy.Races[0]
		if r.OwnLock != 1 || r.HeldLock != 2 || r.PKey != objAKey {
			t.Fatalf("%v: race details: %+v", mode, r)
		}
	}
}
