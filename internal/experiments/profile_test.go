package experiments

import (
	"strings"
	"testing"

	"specmpk/internal/pipeline"
)

// TestProfileDifferential pins the tentpole acceptance criterion at the
// experiment level: profiling 520.omnetpp_r under serialized and specmpk
// yields a differential whose top serialized-mode delta contributor is a
// WRPKRU site, attributed to the serialize bucket.
func TestProfileDifferential(t *testing.T) {
	r := Runner{
		Workloads: []string{"520.omnetpp_r"},
		Modes:     []pipeline.Mode{pipeline.ModeSerialized, pipeline.ModeSpecMPK},
	}
	res, err := ProfileRun(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (one per mode)", len(res.Rows))
	}
	if len(res.Diffs) != 1 {
		t.Fatalf("%d diffs, want 1", len(res.Diffs))
	}
	d := res.Diffs[0].Diff
	if d.ModeA != "serialized" || d.ModeB != "specmpk" {
		t.Fatalf("diff modes %s vs %s", d.ModeA, d.ModeB)
	}
	if len(d.Rows) == 0 {
		t.Fatal("empty differential")
	}
	top := d.Rows[0]
	if !strings.Contains(top.Disasm, "wrpkru") {
		t.Errorf("top delta contributor %q at 0x%x, want a wrpkru site", top.Disasm, top.PC)
	}
	if top.CPIA.Serialize == 0 {
		t.Errorf("top contributor has no serialize cycles under serialized: %+v", top.CPIA)
	}
	if gap := int64(d.TotalA.Sum()) - int64(d.TotalB.Sum()); gap <= 0 {
		t.Errorf("serialized should be slower than specmpk on the dense workload (gap %d)", gap)
	}

	// Each per-mode row carries a consistent profile and audit ledger.
	for _, row := range res.Rows {
		if row.Report.Total.Sum() != row.Cycles {
			t.Errorf("%s/%s: profile attributes %d cycles, machine ran %d",
				row.Workload, row.Mode, row.Report.Total.Sum(), row.Cycles)
		}
		if row.Report.Retired != row.Insts {
			t.Errorf("%s/%s: profile retired %d, machine retired %d",
				row.Workload, row.Mode, row.Report.Retired, row.Insts)
		}
		if len(row.Ledger) == 0 || row.Ledger[len(row.Ledger)-1].Pkey != "total" {
			t.Errorf("%s/%s: ledger missing total row", row.Workload, row.Mode)
		}
	}
	// Only the renamed design opens transient-upgrade windows.
	byMode := map[string]ProfileRow{}
	for _, row := range res.Rows {
		byMode[row.Mode] = row
	}
	if n := byMode["serialized"].Ledger[len(byMode["serialized"].Ledger)-1].UpgradesOpened; n != 0 {
		t.Errorf("serialized opened %d transient windows, want 0", n)
	}
	if n := byMode["specmpk"].Ledger[len(byMode["specmpk"].Ledger)-1].UpgradesOpened; n == 0 {
		t.Error("specmpk opened no transient windows on the dense workload")
	}

	out := RenderProfile(res, 5)
	for _, want := range []string{"pkey audit ledger", "differential", "wrpkru", "per-PC cycle delta"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderProfile output lacks %q", want)
		}
	}
}
