package experiments

import (
	"fmt"
	"strings"

	"specmpk/internal/pipeline"
	"specmpk/internal/workload"
)

// PKRUSafeRow reports the protection overhead of PKRU-Safe-style
// unsafe-library heap isolation (the paper's §III-B third use case; PKRU-
// Safe reports an 11.55 % average slowdown on current hardware) under each
// WRPKRU microarchitecture: cycles(protected) / cycles(unprotected) - 1.
type PKRUSafeRow struct {
	Workload      string
	SerializedPct float64
	NonSecurePct  float64
	SpecMPKPct    float64
}

// PKRUSafe runs the extension heap-isolation workloads. Parallelism follows
// Runner.Parallelism like every other sweep (it was previously pinned to 4
// workers regardless of the machine).
func PKRUSafe(r Runner) ([]PKRUSafeRow, error) {
	ext := workload.ExtCatalog()
	rows := make([]PKRUSafeRow, len(ext))
	err := forEach(r.workers(), indices(ext), func(i int) error {
		p := ext[i]
		overhead := func(mode pipeline.Mode) (float64, error) {
			base, err := r.runStats(p, workload.VariantNone, modeConfig(mode))
			if err != nil {
				return 0, err
			}
			full, err := r.runStats(p, workload.VariantFull, modeConfig(mode))
			if err != nil {
				return 0, err
			}
			return 100 * (float64(full.Cycles)/float64(base.Cycles) - 1), nil
		}
		ser, err := overhead(pipeline.ModeSerialized)
		if err != nil {
			return err
		}
		ns, err := overhead(pipeline.ModeNonSecure)
		if err != nil {
			return err
		}
		sp, err := overhead(pipeline.ModeSpecMPK)
		if err != nil {
			return err
		}
		rows[i] = PKRUSafeRow{
			Workload:      label(p),
			SerializedPct: ser,
			NonSecurePct:  ns,
			SpecMPKPct:    sp,
		}
		return nil
	})
	return rows, err
}

// RenderPKRUSafe prints the overhead comparison.
func RenderPKRUSafe(rows []PKRUSafeRow) string {
	var b strings.Builder
	b.WriteString("PKRU-Safe-style heap isolation (extension): protection overhead by microarchitecture\n")
	fmt.Fprintf(&b, "%-20s %12s %12s %10s\n", "workload", "serialized", "nonsecure", "specmpk")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %11.1f%% %11.1f%% %9.1f%%\n",
			r.Workload, r.SerializedPct, r.NonSecurePct, r.SpecMPKPct)
	}
	b.WriteString("paper §III-B cites an 11.55% average slowdown for this protection class\n")
	b.WriteString("on serializing hardware. SpecMPK recovers roughly half here: library\n")
	b.WriteString("accesses issued before the enabling WRPKRU commits hit Fig. 7 scenario 2\n")
	b.WriteString("and replay at the head — denser protected windows keep more of the cost.\n")
	return b.String()
}
