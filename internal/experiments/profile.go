package experiments

import (
	"fmt"
	"strings"

	"specmpk/internal/pipeline"
	"specmpk/internal/profile"
	"specmpk/internal/workload"
)

// ProfileRow is one workload×mode run with the per-PC profiler and the pkey
// audit ledger attached: where that policy's simulated time went, and what
// pkey security events it generated on the way.
type ProfileRow struct {
	Workload string              `json:"workload"`
	Mode     string              `json:"mode"`
	Cycles   uint64              `json:"cycles"`
	Insts    uint64              `json:"insts"`
	IPC      float64             `json:"ipc"`
	Report   *profile.Report     `json:"profile"`
	Ledger   []profile.LedgerRow `json:"audit"`
}

// ProfileDiff is one workload's cross-policy differential: the first
// requested mode (the baseline, conventionally the slower one) against one
// other mode, attributed per PC.
type ProfileDiff struct {
	Workload string              `json:"workload"`
	Diff     *profile.DiffReport `json:"diff"`
}

// ProfileResult bundles the profile experiment's output: the per-mode
// profiles plus the differential of every non-baseline mode against the
// first requested mode.
type ProfileResult struct {
	Rows  []ProfileRow  `json:"rows"`
	Diffs []ProfileDiff `json:"diffs"`
}

// runProfiled runs one workload under one mode with the profiler and audit
// ledger attached, and re-checks the profiler's sum invariant against the
// machine's own counters.
func runProfiled(p workload.Profile, mode pipeline.Mode) (ProfileRow, *profile.Report, error) {
	prog, err := p.Build(workload.VariantFull)
	if err != nil {
		return ProfileRow{}, nil, err
	}
	m, err := pipeline.New(modeConfig(mode), prog)
	if err != nil {
		return ProfileRow{}, nil, err
	}
	prof := profile.New(prog)
	ledger := profile.NewLedger()
	m.Prof = prof
	m.Audit = ledger
	ledger.Register(m.StatsRegistry())
	if err := m.Run(500_000_000); err != nil {
		return ProfileRow{}, nil, fmt.Errorf("%s/%v: %w", p.Name, mode, err)
	}
	s := m.Stats
	if prof.Total != s.CPI {
		return ProfileRow{}, nil, fmt.Errorf("profile: %s/%v: per-PC CPI stacks sum to %+v, want %+v",
			p.Name, mode, prof.Total, s.CPI)
	}
	if prof.RetiredTotal != s.Insts {
		return ProfileRow{}, nil, fmt.Errorf("profile: %s/%v: profiler retired %d, machine retired %d",
			p.Name, mode, prof.RetiredTotal, s.Insts)
	}
	rep := prof.Report()
	row := ProfileRow{
		Workload: label(p),
		Mode:     mode.String(),
		Cycles:   s.Cycles,
		Insts:    s.Insts,
		IPC:      s.IPC(),
		Report:   rep,
		Ledger:   ledger.Rows(),
	}
	return row, rep, nil
}

// ProfileRun runs the profile experiment: every catalogue workload under
// each requested mode (Runner.Modes; default serialized,specmpk — the
// paper's headline pair), plus the per-PC differential of each non-baseline
// mode against the first.
func ProfileRun(r Runner) (*ProfileResult, error) {
	if len(r.Modes) == 0 {
		r.Modes = []pipeline.Mode{pipeline.ModeSerialized, pipeline.ModeSpecMPK}
	}
	cat := r.catalog()
	modes := r.modes()
	rows := make([]ProfileRow, len(cat)*len(modes))
	reports := make([]*profile.Report, len(rows))
	err := forEach(r.workers(), indices(rows), func(i int) error {
		row, rep, err := runProfiled(cat[i/len(modes)], modes[i%len(modes)])
		if err != nil {
			return err
		}
		rows[i], reports[i] = row, rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &ProfileResult{Rows: rows}
	for w := range cat {
		base := w * len(modes)
		for mi := 1; mi < len(modes); mi++ {
			res.Diffs = append(res.Diffs, ProfileDiff{
				Workload: rows[base].Workload,
				Diff: profile.Diff(modes[0].String(), reports[base],
					modes[mi].String(), reports[base+mi]),
			})
		}
	}
	return res, nil
}

// RenderProfile prints the top-PC table and audit ledger per workload×mode.
func RenderProfile(res *ProfileResult, topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile: per-PC attribution of simulated time (top %d PCs per run)\n", topN)
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "\n== %s / %s: %d cycles, %d insts, IPC %.3f ==\n",
			r.Workload, r.Mode, r.Cycles, r.Insts, r.IPC)
		r.Report.Table(&b, topN)
		if len(r.Report.Blocks) > 0 {
			b.WriteByte('\n')
			r.Report.BlockTable(&b, 5)
		}
		fmt.Fprintf(&b, "\npkey audit ledger (%s / %s):\n", r.Workload, r.Mode)
		ledgerTable(&b, r.Ledger)
	}
	if len(res.Diffs) > 0 {
		b.WriteByte('\n')
		b.WriteString(RenderDiff(res, topN))
	}
	return b.String()
}

// RenderDiff prints only the cross-policy differentials.
func RenderDiff(res *ProfileResult, topN int) string {
	var b strings.Builder
	for _, d := range res.Diffs {
		fmt.Fprintf(&b, "\n== differential: %s, %s vs %s ==\n",
			d.Workload, d.Diff.ModeA, d.Diff.ModeB)
		d.Diff.Table(&b, topN)
		b.WriteByte('\n')
		b.WriteString(d.Diff.Histogram(10, 40))
	}
	return b.String()
}

func ledgerTable(b *strings.Builder, rows []profile.LedgerRow) {
	fmt.Fprintf(b, "%-8s %9s %9s %10s %10s %9s %10s %9s %10s %9s %10s\n",
		"pkey", "upg.open", "upg.commt", "upg.squash", "upg.cycles",
		"ld.stall", "ld.cycles", "st.nofwd", "fwd.cycles", "tlb.defer", "tlb.cycles")
	for _, r := range rows {
		fmt.Fprintf(b, "%-8s %9d %9d %10d %10d %9d %10d %9d %10d %9d %10d\n",
			r.Pkey, r.UpgradesOpened, r.UpgradesCommitted, r.UpgradesSquashed,
			r.UpgradeWindowCycles, r.LoadsStalled, r.LoadStallCycles,
			r.StoresNoForward, r.NoForwardCycles, r.TLBDefers, r.TLBDeferCycles)
	}
}
