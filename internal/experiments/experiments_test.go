package experiments

import (
	"strings"
	"testing"
)

// The full-catalogue sweeps run in the benches and cmd/specmpk-bench; the
// tests here validate each experiment's machinery on a small subset and
// check the paper-shape properties that must hold.

func smallRunner() Runner {
	return Runner{Workloads: []string{"520.omnetpp_r", "557.xz_r", "453.povray"}}
}

func TestFig3ShapeOnSubset(t *testing.T) {
	rows, err := Fig3(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Fig3Row{}
	for _, r := range rows {
		if r.Speedup < 0.95 {
			t.Errorf("%s: speculative execution should not slow down (%.3f)", r.Workload, r.Speedup)
		}
		byName[r.Workload] = r
	}
	hot := byName["520.omnetpp_r (SS)"]
	cold := byName["557.xz_r (SS)"]
	if hot.Speedup <= cold.Speedup {
		t.Errorf("WRPKRU-dense workload must gain more: omnetpp %.3f vs xz %.3f",
			hot.Speedup, cold.Speedup)
	}
	if hot.Speedup < 1.10 {
		t.Errorf("omnetpp SS speedup %.3f implausibly small", hot.Speedup)
	}
	if hot.RenameStallPct <= cold.RenameStallPct {
		t.Errorf("rename stalls must track WRPKRU density")
	}
	out := RenderFig3(rows)
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "average speedup") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig4ShapeOnSubset(t *testing.T) {
	rows, err := Fig4(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TotalOverheadPct < -2 {
			t.Errorf("%s: negative total overhead %.1f%%", r.Workload, r.TotalOverheadPct)
		}
		// Serialization must dominate the compiler transformation for the
		// dense workload (the Fig. 4 claim).
		if strings.HasPrefix(r.Workload, "520.omnetpp_r") &&
			r.SerializeOverhead <= r.CompilerOverheadPct {
			t.Errorf("%s: serialization (%.1f%%) should dominate compiler (%.1f%%)",
				r.Workload, r.SerializeOverhead, r.CompilerOverheadPct)
		}
	}
	if out := RenderFig4(rows); !strings.Contains(out, "serialization") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig9ShapeOnSubset(t *testing.T) {
	rows, err := Fig9(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SpecMPKNorm < 0.95 {
			t.Errorf("%s: SpecMPK slower than serialized (%.3f)", r.Workload, r.SpecMPKNorm)
		}
		// SpecMPK tracks NonSecure closely for ordinary workloads. Two
		// documented exceptions (EXPERIMENTS.md): the densest workload
		// (omnetpp) is ROB_pkru-capacity-bound at the default 8 entries —
		// that is exactly the Fig. 11 sensitivity, and TestFig11Sensitivity
		// checks it converges at the faithful 1/24-ratio size — and CPI
		// workloads pay the intrinsic head-replay cost of protected loads
		// that execute before their enabling WRPKRU commits (Fig. 7
		// scenario 2).
		limit := 0.06
		if strings.Contains(r.Workload, "omnetpp") || strings.Contains(r.Workload, "CPI") {
			limit = 0.25
		}
		if r.NonSecureNorm-r.SpecMPKNorm > limit {
			t.Errorf("%s: SpecMPK trails NonSecure by %.3f", r.Workload,
				r.NonSecureNorm-r.SpecMPKNorm)
		}
	}
	s := Summarize(rows)
	if s.MaxSpecMPKSpeedupPct < 10 {
		t.Errorf("max speedup %.1f%% too small for this subset", s.MaxSpecMPKSpeedupPct)
	}
	if out := RenderFig9(rows); !strings.Contains(out, "SpecMPK speedup") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig10Ordering(t *testing.T) {
	rows, err := Fig10(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	density := map[string]float64{}
	for _, r := range rows {
		density[r.Workload] = r.WrpkruPerKilo
	}
	if density["520.omnetpp_r (SS)"] <= density["557.xz_r (SS)"] {
		t.Fatal("density ordering broken")
	}
	if out := RenderFig10(rows); !strings.Contains(out, "wrpkru/kinst") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig11Sensitivity(t *testing.T) {
	r := Runner{Workloads: []string{"520.omnetpp_r"}}
	rows, err := Fig11(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	row := rows[0]
	// Larger ROB_pkru must not hurt, and the dense workload must lose
	// performance at 2 entries relative to 8 (the Fig. 11 claim for
	// omnetpp).
	if row.Norm[2] > row.Norm[8]+0.01 {
		t.Errorf("2-entry (%.3f) should not beat 8-entry (%.3f)", row.Norm[2], row.Norm[8])
	}
	if row.Norm[8]-row.Norm[2] < 0.01 {
		t.Errorf("omnetpp must be sensitive to ROB_pkru size: 2=%.3f 8=%.3f",
			row.Norm[2], row.Norm[8])
	}
	// At the faithful 1/24-ratio size (16 entries for AL=352) the densest
	// workload matches NonSecure, the paper's §VII-1 claim.
	if row.NonSecureNorm-row.Norm[16] > 0.08 {
		t.Errorf("omnetpp at 16 entries (%.3f) must approach NonSecure (%.3f)",
			row.Norm[16], row.NonSecureNorm)
	}
	if out := RenderFig11(rows); !strings.Contains(out, "Figure 11") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig13(t *testing.T) {
	res, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if !res.NonSecure.Leaked() || res.SpecMPK.Leaked() {
		t.Fatalf("leak pattern wrong: ns=%v sp=%v", res.NonSecure.Leaked(), res.SpecMPK.Leaked())
	}
	out := RenderFig13(res)
	if !strings.Contains(out, "leak: nonsecure=true specmpk=false") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTables(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderTable1(rows); !strings.Contains(out, "MPK") {
		t.Fatalf("table1:\n%s", out)
	}
	t2 := Table2()
	if len(t2) != 3 || t2[1].InstType != "Store" || len(t2[1].NewOperands) != 4 {
		t.Fatalf("table2: %+v", t2)
	}
	if out := RenderTable2(t2); !strings.Contains(out, "WriteDisableCounter") {
		t.Fatalf("table2 render:\n%s", out)
	}
	if out := RenderTable3(); !strings.Contains(out, "352/128/72/160/280") {
		t.Fatalf("table3 render:\n%s", out)
	}
	hc := HWCost()
	if out := RenderHWCost(hc); !strings.Contains(out, "93.5 B") {
		t.Fatalf("hwcost render:\n%s", out)
	}
}
