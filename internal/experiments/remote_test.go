package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"specmpk/internal/cluster"
	"specmpk/internal/pipeline"
	"specmpk/internal/server/api"
	"specmpk/internal/server/client"
	"specmpk/internal/workload"
)

// TestRemoteSimRetriesTransientFailures: the -remote seam must absorb a
// daemon that transiently rejects (503) before accepting, and must not
// retry terminal job failures.
func TestRemoteSimRetriesTransientFailures(t *testing.T) {
	result := api.Result{Key: "k", Version: "test", StopReason: "halt",
		Stats: pipeline.Stats{Cycles: 100, Insts: 50}}
	resultJSON, err := json.Marshal(result)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.JobInfo{
			ID: "j-1", State: api.StateDone, Result: resultJSON,
		})
	}))
	defer ts.Close()

	c := client.New(ts.URL)
	c.Retry = client.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	sim := RemoteSim(c)
	res, err := sim(workload.Profile{Name: "w"}, workload.VariantFull, pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != 100 {
		t.Fatalf("result stats %+v", res.Stats)
	}
}

// TestRemoteSimDoesNotRetryTerminalFailures: a failed job (bad spec, panic,
// deadline) is deterministic — re-running reproduces it, so RemoteSim must
// surface it after one attempt.
func TestRemoteSimDoesNotRetryTerminalFailures(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.JobInfo{
			ID: "j-1", State: api.StateFailed, Error: "deadline: wall-clock budget (10 ms) exceeded at cycle 42",
		})
	}))
	defer ts.Close()

	c := client.New(ts.URL)
	c.Retry = client.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	sim := RemoteSim(c)
	if _, err := sim(workload.Profile{Name: "w"}, workload.VariantFull, pipeline.DefaultConfig()); err == nil {
		t.Fatal("terminal failure succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("daemon saw %d submits for a terminal failure, want 1", got)
	}
}

// TestClusterSimDegradesToLocal: with every cluster peer down, ClusterSim
// must fall to in-process simulation and still deliver a real result — the
// degradation ladder's bottom rung, so a sweep survives a full outage.
func TestClusterSimDegradesToLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real local simulation")
	}
	// Two daemons that are already gone: bind, record, close.
	var dead []string
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(http.NotFoundHandler())
		dead = append(dead, ts.URL)
		ts.Close()
	}
	co, err := cluster.New(cluster.Options{
		Peers:         dead,
		ProbeInterval: -1,
		HedgeAfter:    -1,
		Retry:         client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	co.ProbeNow()
	co.ProbeNow() // two failed rounds mark every peer down

	p, ok := workload.ByName("520.omnetpp_r")
	if !ok {
		t.Fatal("workload 520.omnetpp_r missing")
	}
	cfg := pipeline.DefaultConfig()
	res, err := ClusterSim(co)(p, workload.VariantFull, cfg)
	if err != nil {
		t.Fatalf("degraded cell failed: %v", err)
	}
	want, err := LocalSim(p, workload.VariantFull, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != want.Stats {
		t.Fatalf("degraded stats %+v != local %+v", res.Stats, want.Stats)
	}
}
