package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"specmpk/internal/pipeline"
	"specmpk/internal/server/api"
	"specmpk/internal/server/client"
	"specmpk/internal/workload"
)

// TestRemoteSimRetriesTransientFailures: the -remote seam must absorb a
// daemon that transiently rejects (503) before accepting, and must not
// retry terminal job failures.
func TestRemoteSimRetriesTransientFailures(t *testing.T) {
	result := api.Result{Key: "k", Version: "test", StopReason: "halt",
		Stats: pipeline.Stats{Cycles: 100, Insts: 50}}
	resultJSON, err := json.Marshal(result)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.JobInfo{
			ID: "j-1", State: api.StateDone, Result: resultJSON,
		})
	}))
	defer ts.Close()

	c := client.New(ts.URL)
	c.Retry = client.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	sim := RemoteSim(c)
	res, err := sim(workload.Profile{Name: "w"}, workload.VariantFull, pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != 100 {
		t.Fatalf("result stats %+v", res.Stats)
	}
}

// TestRemoteSimDoesNotRetryTerminalFailures: a failed job (bad spec, panic,
// deadline) is deterministic — re-running reproduces it, so RemoteSim must
// surface it after one attempt.
func TestRemoteSimDoesNotRetryTerminalFailures(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.JobInfo{
			ID: "j-1", State: api.StateFailed, Error: "deadline: wall-clock budget (10 ms) exceeded at cycle 42",
		})
	}))
	defer ts.Close()

	c := client.New(ts.URL)
	c.Retry = client.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	sim := RemoteSim(c)
	if _, err := sim(workload.Profile{Name: "w"}, workload.VariantFull, pipeline.DefaultConfig()); err == nil {
		t.Fatal("terminal failure succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("daemon saw %d submits for a terminal failure, want 1", got)
	}
}
