package experiments

import (
	"fmt"
	"strings"

	"specmpk/internal/pipeline"
	"specmpk/internal/workload"
)

// StatsRow is one workload×mode row of the `stats` experiment: the machine's
// full unified metrics registry plus the CPI-stack decomposition, the
// machine-readable counterpart of every other experiment's derived numbers.
type StatsRow struct {
	Workload string            `json:"workload"`
	Mode     string            `json:"mode"`
	Cycles   uint64            `json:"cycles"`
	Insts    uint64            `json:"insts"`
	IPC      float64           `json:"ipc"`
	CPI      pipeline.CPIStack `json:"cpiStack"`
	Metrics  map[string]any    `json:"metrics"`
}

// StatsRows runs every catalogue workload under each registered
// microarchitecture policy (restrict with Runner.Modes) and captures the
// unified registry per run. It verifies the CPI-stack invariant (buckets sum
// exactly to the cycle count) on every row and fails loudly if the accounting
// ever leaks a cycle — including for policies registered outside this package.
func StatsRows(r Runner) ([]StatsRow, error) {
	cat := r.catalog()
	modes := r.modes()
	rows := make([]StatsRow, len(cat)*len(modes))
	err := forEach(r.workers(), indices(rows), func(i int) error {
		p := cat[i/len(modes)]
		mode := modes[i%len(modes)]
		res, err := r.sim(p, workload.VariantFull, modeConfig(mode))
		if err != nil {
			return fmt.Errorf("%s/%v: %w", p.Name, mode, err)
		}
		s := res.Stats
		if s.CPI.Sum() != s.Cycles {
			return fmt.Errorf("stats: %s/%v: CPI stack sums to %d, want %d cycles",
				p.Name, mode, s.CPI.Sum(), s.Cycles)
		}
		rows[i] = StatsRow{
			Workload: label(p),
			Mode:     mode.String(),
			Cycles:   s.Cycles,
			Insts:    s.Insts,
			IPC:      s.IPC(),
			CPI:      s.CPI,
			Metrics:  res.Metrics,
		}
		return nil
	})
	return rows, err
}

// RenderStats prints the CPI-stack decomposition per workload×mode as bucket
// shares — the attribution view of the Serialized-vs-SpecMPK gap.
func RenderStats(rows []StatsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPI stack: per-cycle attribution (buckets sum to 100%% of cycles)\n")
	fmt.Fprintf(&b, "%-24s %-11s %6s %6s %6s %6s %6s %6s %6s\n",
		"workload", "mode", "ipc", "base%", "front%", "seri%", "pkru%", "mem%", "squa%")
	for _, r := range rows {
		pct := func(v uint64) float64 { return 100 * float64(v) / float64(r.Cycles) }
		fmt.Fprintf(&b, "%-24s %-11s %6.3f %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
			r.Workload, r.Mode, r.IPC,
			pct(r.CPI.Base), pct(r.CPI.Frontend), pct(r.CPI.Serialize),
			pct(r.CPI.PkruFull), pct(r.CPI.Memory), pct(r.CPI.SquashRecovery))
	}
	return b.String()
}
