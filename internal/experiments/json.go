package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON emits any experiment's rows as indented JSON wrapped in an
// envelope naming the experiment — the machine-readable path for plotting
// scripts (`specmpk-bench -json ...`).
func WriteJSON(w io.Writer, experiment string, rows any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiment string `json:"experiment"`
		Rows       any    `json:"rows"`
	}{Experiment: experiment, Rows: rows})
}

// RowsFor runs the named experiment and returns its typed rows (for the
// JSON path). Render-only entries (table2/table3) return printable structs.
func RowsFor(r Runner, name string) (any, error) {
	switch name {
	case "table1":
		return Table1()
	case "table2":
		return Table2(), nil
	case "fig3":
		return Fig3(r)
	case "fig4":
		return Fig4(r)
	case "fig9":
		return Fig9(r)
	case "fig10":
		return Fig10(r)
	case "fig11":
		return Fig11(r)
	case "fig13":
		res, err := Fig13()
		if err != nil {
			return nil, err
		}
		return struct {
			NonSecure []int `json:"nonsecureLatency"`
			SpecMPK   []int `json:"specmpkLatency"`
			Threshold int   `json:"threshold"`
		}{res.NonSecure.Latency[:], res.SpecMPK.Latency[:], res.NonSecure.Threshold}, nil
	case "hwcost":
		return HWCost().Items, nil
	case "vdom":
		return VDomSweep()
	case "window":
		return WindowSweep(r, "")
	case "pkrusafe":
		return PKRUSafe(r)
	case "sampled":
		return Sampled(r)
	case "stats":
		return StatsRows(r)
	case "profile":
		return ProfileRun(r)
	case "diff":
		res, err := ProfileRun(r)
		if err != nil {
			return nil, err
		}
		return res.Diffs, nil
	}
	return nil, fmt.Errorf("experiments: no JSON rows for %q", name)
}
