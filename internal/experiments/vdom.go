package experiments

import (
	"fmt"
	"strings"

	"specmpk/internal/mem"
	"specmpk/internal/vdom"
)

// VDomRow is one point of the key-virtualization sweep: a session server
// isolating each client session in its own virtual domain (the paper's
// §III-B OpenSSL scenario, which reports 4.2 % overhead once sessions
// exceed the 16 hardware keys).
type VDomRow struct {
	Domains     int
	Evictions   uint64
	PageRetags  uint64
	OverheadPct float64
}

// VDomSweep simulates a server handling requests over N sessions with a
// hot-set access pattern (90 % of requests hit 8 hot sessions), for N from
// well under to well over the hardware key budget. Overhead is the
// virtualization cost relative to the useful per-request work.
func VDomSweep() ([]VDomRow, error) {
	const (
		requests     = 4000
		hotSessions  = 8
		hotShareDen  = 10 // 9 of 10 requests hit the hot set
		workPerReq   = 3000
		pagesPerSess = 2
	)
	var rows []VDomRow
	for _, n := range []int{8, 14, 24, 48, 96} {
		as := mem.NewAddressSpace()
		m, err := vdom.New(as)
		if err != nil {
			return nil, err
		}
		doms := make([]*vdom.Domain, n)
		for i := range doms {
			base := uint64(0x40000000 + i*0x10000)
			as.Map(base, pagesPerSess*mem.PageSize, mem.ProtRW)
			doms[i] = m.CreateDomain()
			if err := m.Attach(doms[i], base, pagesPerSess*mem.PageSize, mem.ProtRW); err != nil {
				return nil, err
			}
		}
		// Deterministic request stream with a hot set.
		seed := uint64(42)
		next := func(mod int) int {
			seed = seed*6364136223846793005 + 1442695040888963407
			return int(seed>>33) % mod
		}
		hot := hotSessions
		if n < hot {
			hot = n
		}
		for r := 0; r < requests; r++ {
			var d *vdom.Domain
			if next(hotShareDen) != 0 {
				d = doms[next(hot)]
			} else {
				d = doms[next(n)]
			}
			if _, err := m.Bind(d); err != nil {
				return nil, err
			}
		}
		cost := vdom.DefaultCost().Cycles(m.Stats)
		rows = append(rows, VDomRow{
			Domains:     n,
			Evictions:   m.Stats.Evictions,
			PageRetags:  m.Stats.PageRetags,
			OverheadPct: 100 * float64(cost) / float64(requests*workPerReq),
		})
	}
	return rows, nil
}

// RenderVDom prints the sweep with the paper's reference point.
func RenderVDom(rows []VDomRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Key virtualization (libmpk/VDom-style, extension): overhead vs session count\n")
	fmt.Fprintf(&b, "%-10s %11s %12s %10s\n", "sessions", "evictions", "page-retags", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %11d %12d %9.2f%%\n", r.Domains, r.Evictions, r.PageRetags, r.OverheadPct)
	}
	b.WriteString("paper §III-B: isolating OpenSSL session keys needs >16 pKeys and the\n")
	b.WriteString("resulting remapping costs ~4.2% — the same cliff appears past 14 domains\n")
	b.WriteString("(14 = 16 keys minus the default key and the reserved evicted key).\n")
	return b.String()
}
