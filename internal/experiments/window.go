package experiments

import (
	"fmt"
	"strings"

	"specmpk/internal/pipeline"
	"specmpk/internal/workload"
)

// WindowRow is one point of the instruction-window sweep (extension): how
// the speculative-WRPKRU benefit scales with the out-of-order window. The
// serialized machine's cost per WRPKRU is a pipeline drain, so larger
// windows widen the gap; SpecMPK must keep tracking NonSecure at every
// size (with the ROB_pkru scaled by the paper's 1/24 ratio).
type WindowRow struct {
	ALSize        int
	SerializedIPC float64
	NonSecureNorm float64
	SpecMPKNorm   float64
}

// WindowSizes are the swept active-list sizes (Table III's machine is 352).
var WindowSizes = []int{96, 192, 352}

// WindowSweep runs the densest workload across window sizes.
func WindowSweep(r Runner, workloadName string) ([]WindowRow, error) {
	if workloadName == "" {
		workloadName = "520.omnetpp_r"
	}
	p, ok := workload.ByName(workloadName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", workloadName)
	}
	var rows []WindowRow
	for _, al := range WindowSizes {
		shape := func(mode pipeline.Mode) (pipeline.Stats, error) {
			cfg := pipeline.DefaultConfig()
			cfg.Mode = mode
			cfg.ALSize = al
			// Scale the auxiliary windows with the AL, as a real design
			// would; ROB_pkru follows the paper's 1/24 ratio.
			cfg.IQSize = al / 2
			cfg.LQSize = al / 3
			cfg.SQSize = al / 5
			cfg.PRFSize = al/2 + 104
			cfg.ROBPkruSize = max(al/24, 2)
			return r.runStats(p, workload.VariantFull, cfg)
		}
		ser, err := shape(pipeline.ModeSerialized)
		if err != nil {
			return nil, err
		}
		ns, err := shape(pipeline.ModeNonSecure)
		if err != nil {
			return nil, err
		}
		sp, err := shape(pipeline.ModeSpecMPK)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WindowRow{
			ALSize:        al,
			SerializedIPC: ser.IPC(),
			NonSecureNorm: ns.IPC() / ser.IPC(),
			SpecMPKNorm:   sp.IPC() / ser.IPC(),
		})
	}
	return rows, nil
}

// RenderWindow prints the sweep.
func RenderWindow(workloadName string, rows []WindowRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Window sweep (extension): speculative-WRPKRU benefit vs AL size (%s)\n", workloadName)
	fmt.Fprintf(&b, "%-8s %10s %12s %10s\n", "AL", "ser. IPC", "nonsecure", "specmpk")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %10.3f %11.3fx %9.3fx\n",
			r.ALSize, r.SerializedIPC, r.NonSecureNorm, r.SpecMPKNorm)
	}
	b.WriteString("larger windows amplify the serialization penalty; SpecMPK keeps pace\n")
	b.WriteString("with NonSecure when ROB_pkru scales at the paper's 1/24 ratio.\n")
	return b.String()
}
