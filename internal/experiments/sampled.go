package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"specmpk/internal/pipeline"
	"specmpk/internal/server/api"
	"specmpk/internal/simpoint"
	"specmpk/internal/workload"
)

// SampledRow is one workload×policy cell of the sampled-vs-full comparison:
// the SimPoint extrapolation, the full-fidelity truth it approximates, the
// measured error against the predicted bound, and the wall-clock speedup the
// sampling bought.
type SampledRow struct {
	Workload    string  `json:"workload"`
	Mode        string  `json:"mode"`
	SampledCPI  float64 `json:"sampledCPI"`
	FullCPI     float64 `json:"fullCPI"`
	ErrPct      float64 `json:"errPct"`   // measured: 100*(sampled-full)/full
	BoundPct    float64 `json:"boundPct"` // predicted: 100*ErrorBound
	WithinBound bool    `json:"withinBound"`
	SampledMS   float64 `json:"sampledMS"` // profile share + interval sims
	FullMS      float64 `json:"fullMS"`
	Speedup     float64 `json:"speedup"` // FullMS / SampledMS (0 = not measured)
}

// sampledModes is the default policy set for the sampled experiment: the
// paper's three headline machines. -modes overrides.
func (r Runner) sampledModes() []pipeline.Mode {
	if len(r.Modes) > 0 {
		return r.Modes
	}
	return []pipeline.Mode{pipeline.ModeSerialized, pipeline.ModeSpecMPK, pipeline.ModeNonSecure}
}

func msf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Sampled regenerates the sampled-vs-full validation table. Locally it runs
// the simpoint plan machinery in-process (one profile per workload, shared
// across the policy sweep — the same amortization the daemon's profile cache
// provides, so the profiling cost is split evenly across the modes when
// computing per-cell speedups). With a Runner.Client it submits
// sampled-fidelity jobs to a daemon instead, exercising the whole service
// path including parallel interval fan-out and the profile cache.
func Sampled(r Runner) ([]SampledRow, error) {
	if r.Client != nil {
		return sampledRemote(r)
	}
	modes := r.sampledModes()
	cat := r.catalog()
	perWL := make([][]SampledRow, len(cat))
	err := forEach(r.workers(), indices(cat), func(i int) error {
		p := cat[i]
		prog, err := p.Build(workload.VariantFull)
		if err != nil {
			return err
		}
		scfg := simpoint.DefaultConfig()
		pt0 := time.Now()
		plan, err := simpoint.BuildPlan(prog, scfg)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		profileShare := msf(time.Since(pt0)) / float64(len(modes))
		for _, mode := range modes {
			cfg := modeConfig(mode)
			st0 := time.Now()
			stats := make([]pipeline.Stats, len(plan.Points))
			for j := range plan.Points {
				if stats[j], err = plan.SimulatePoint(j, cfg, prog); err != nil {
					return fmt.Errorf("%s/%v point %d: %w", p.Name, mode, j, err)
				}
			}
			est, err := plan.Estimate(stats)
			if err != nil {
				return fmt.Errorf("%s/%v: %w", p.Name, mode, err)
			}
			sampledMS := profileShare + msf(time.Since(st0))

			ft0 := time.Now()
			m, err := pipeline.New(cfg, prog)
			if err != nil {
				return err
			}
			if err := m.Run(500_000_000); err != nil {
				return fmt.Errorf("%s/%v full run: %w", p.Name, mode, err)
			}
			fullMS := msf(time.Since(ft0))
			fullCPI := float64(m.Stats.Cycles) / float64(m.Stats.Insts)

			row := SampledRow{
				Workload:    label(p),
				Mode:        mode.String(),
				SampledCPI:  est.CPI,
				FullCPI:     fullCPI,
				ErrPct:      100 * (est.CPI - fullCPI) / fullCPI,
				BoundPct:    100 * est.ErrorBound,
				SampledMS:   sampledMS,
				FullMS:      fullMS,
				Speedup:     fullMS / sampledMS,
			}
			row.WithinBound = row.ErrPct >= -row.BoundPct && row.ErrPct <= row.BoundPct
			perWL[i] = append(perWL[i], row)
		}
		return nil
	})
	var rows []SampledRow
	for _, rs := range perWL {
		rows = append(rows, rs...)
	}
	return rows, err
}

// sampledRemote runs the table through a daemon: one sampled-fidelity job
// and one full-fidelity job per cell. Wall times come from the daemon's
// JobInfo; a cell answered from the result cache never ran, so its speedup
// is reported as 0 (rendered "-") rather than a fabricated ratio.
func sampledRemote(r Runner) ([]SampledRow, error) {
	modes := r.sampledModes()
	cat := r.catalog()
	perWL := make([][]SampledRow, len(cat))
	err := forEach(r.workers(), indices(cat), func(i int) error {
		p := cat[i]
		for _, mode := range modes {
			sSpec := api.JobSpec{Workload: p.Name, Mode: mode.String(), Fidelity: api.FidelitySampled}
			sRes, sInfo, err := r.Client.Run(context.Background(), sSpec)
			if err != nil {
				return fmt.Errorf("%s/%v sampled: %w", p.Name, mode, err)
			}
			if sRes.Sampled == nil {
				return fmt.Errorf("%s/%v: daemon returned no sampled section", p.Name, mode)
			}
			fSpec := api.JobSpec{Workload: p.Name, Mode: mode.String()}
			fRes, fInfo, err := r.Client.Run(context.Background(), fSpec)
			if err != nil {
				return fmt.Errorf("%s/%v full: %w", p.Name, mode, err)
			}
			if fRes.Stats.Insts == 0 {
				return fmt.Errorf("%s/%v full: retired no instructions", p.Name, mode)
			}
			fullCPI := float64(fRes.Stats.Cycles) / float64(fRes.Stats.Insts)
			row := SampledRow{
				Workload:   label(p),
				Mode:       mode.String(),
				SampledCPI: sRes.Sampled.CPI,
				FullCPI:    fullCPI,
				ErrPct:     100 * (sRes.Sampled.CPI - fullCPI) / fullCPI,
				BoundPct:   100 * sRes.Sampled.ErrorBound,
			}
			if !sInfo.Cached && !fInfo.Cached {
				row.SampledMS = sInfo.WallMS
				row.FullMS = fInfo.WallMS
				if sInfo.WallMS > 0 {
					row.Speedup = fInfo.WallMS / sInfo.WallMS
				}
			}
			row.WithinBound = row.ErrPct >= -row.BoundPct && row.ErrPct <= row.BoundPct
			perWL[i] = append(perWL[i], row)
		}
		return nil
	})
	var rows []SampledRow
	for _, rs := range perWL {
		rows = append(rows, rs...)
	}
	return rows, err
}

// RenderSampled prints the validation table plus the aggregate the
// methodology is judged by: every cell's measured error inside its bound,
// and the wall-clock it saved.
func RenderSampled(rows []SampledRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sampled simulation: SimPoint extrapolation vs full fidelity (paper §VII methodology)\n")
	fmt.Fprintf(&b, "%-24s %-12s %9s %9s %8s %8s %7s %9s\n",
		"workload", "mode", "sampled", "full", "err%", "bound%", "ok", "speedup")
	within, speedSum, speedN := 0, 0.0, 0
	for _, r := range rows {
		ok := "yes"
		if !r.WithinBound {
			ok = "NO"
		} else {
			within++
		}
		speed := "-"
		if r.Speedup > 0 {
			speed = fmt.Sprintf("%8.1fx", r.Speedup)
			speedSum += r.Speedup
			speedN++
		}
		fmt.Fprintf(&b, "%-24s %-12s %9.4f %9.4f %+7.1f%% %7.1f%% %7s %9s\n",
			r.Workload, r.Mode, r.SampledCPI, r.FullCPI, r.ErrPct, r.BoundPct, ok, speed)
	}
	fmt.Fprintf(&b, "%d/%d cells within their error bound", within, len(rows))
	if speedN > 0 {
		fmt.Fprintf(&b, "; mean wall-clock speedup %.1fx over %d measured cells", speedSum/float64(speedN), speedN)
	}
	b.WriteByte('\n')
	return b.String()
}
