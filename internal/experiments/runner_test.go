package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"specmpk/internal/pipeline"
	"specmpk/internal/workload"
)

// TestForEachCollectsAllErrors: a sweep failing on several items must report
// every failure, not just whichever error won a race.
func TestForEachCollectsAllErrors(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	err := forEach(3, items, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("item-%d-broke", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error returned")
	}
	for _, want := range []string{"item-0-broke", "item-3-broke", "item-6-broke"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	if strings.Contains(err.Error(), "item-1") {
		t.Errorf("joined error contains a non-error item: %v", err)
	}
	if err := forEach(3, items, func(int) error { return nil }); err != nil {
		t.Fatalf("all-success forEach returned %v", err)
	}
}

// TestSimSeam: a Runner with Sim installed must route every pipeline
// simulation through it and use the returned statistics.
func TestSimSeam(t *testing.T) {
	var calls atomic.Uint64
	stub := func(p workload.Profile, v workload.Variant, cfg pipeline.Config) (SimResult, error) {
		calls.Add(1)
		st := pipeline.Stats{Cycles: 1000, Insts: 2000}
		st.CPI.Base = st.Cycles // keep the CPI-stack invariant intact
		switch cfg.Mode {
		case pipeline.ModeNonSecure:
			st.Insts = 3000
		case pipeline.ModeSpecMPK:
			st.Insts = 2900
		}
		return SimResult{Stats: st, Metrics: map[string]any{"stub": true}}, nil
	}
	r := Runner{Workloads: []string{"557.xz_r"}, Sim: stub}
	rows, err := Fig9(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("stub called %d times, want 3 (ser/ns/sp)", got)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].NonSecureNorm != 1.5 || rows[0].SpecMPKNorm != 1.45 {
		t.Fatalf("stub stats did not flow through: %+v", rows[0])
	}

	// StatsRows must carry the seam's Metrics verbatim.
	calls.Store(0)
	r.Modes = []pipeline.Mode{pipeline.ModeSpecMPK}
	srows, err := StatsRows(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(srows) != 1 || srows[0].Metrics["stub"] != true {
		t.Fatalf("stats rows %+v", srows)
	}
}
