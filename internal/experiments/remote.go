package experiments

import (
	"context"
	"errors"
	"fmt"

	"specmpk/internal/cluster"
	"specmpk/internal/pipeline"
	"specmpk/internal/server/api"
	"specmpk/internal/server/client"
	"specmpk/internal/workload"
)

// remoteJobAttempts bounds how many times one job is re-run when it keeps
// failing transiently. Each attempt already carries the client's own
// backoff/retry budget (and its daemon-restart resubmission), so this outer
// loop only matters for prolonged outages; a sweep then loses exactly the
// jobs that outlived every layer of retries, reported per job by forEach's
// joined error, instead of aborting wholesale on the first wobble.
const remoteJobAttempts = 3

// RemoteSim adapts a specmpkd client into the SimFunc seam: one simulation
// request becomes one daemon job. The daemon dedups identical in-flight
// specs and serves repeats from its result cache, so a sweep whose
// experiments share baselines costs each unique spec exactly once.
//
// Failure taxonomy: transient errors (daemon overloaded or restarting) are
// retried per job; terminal job failures — bad specs, wall-clock deadline
// exceeded, a panicking simulation — are not, because re-running the same
// deterministic spec reproduces them.
func RemoteSim(c *client.Client) SimFunc {
	return func(p workload.Profile, v workload.Variant, cfg pipeline.Config) (SimResult, error) {
		spec := api.SpecFor(p.Name, v, cfg)
		var lastErr error
		for attempt := 0; attempt < remoteJobAttempts; attempt++ {
			res, _, err := c.Run(context.Background(), spec)
			if err != nil {
				if client.IsTransient(err) {
					lastErr = err
					continue
				}
				return SimResult{}, fmt.Errorf("%s/%v/%v: %w", p.Name, v, cfg.Mode, err)
			}
			// Local runs treat a budget-bounded (non-halting) workload as an
			// error; mirror that so remote sweeps fail the same way.
			if res.StopReason != string(pipeline.StopHalt) {
				return SimResult{}, fmt.Errorf("%s/%v/%v: remote run stopped with %q",
					p.Name, v, cfg.Mode, res.StopReason)
			}
			return SimResult{Stats: res.Stats, Metrics: res.Metrics}, nil
		}
		return SimResult{}, fmt.Errorf("%s/%v/%v: job kept failing transiently: %w",
			p.Name, v, cfg.Mode, lastErr)
	}
}

// ClusterSim adapts a cluster coordinator into the SimFunc seam: each
// simulation request is consistent-hash placed on the peer owning its
// content-addressed key, with the coordinator's peer-cache lookup, hedging
// and failover in front. When every peer is down the coordinator reports
// ErrNoPeers and the job falls to the bottom rung of the degradation
// ladder — in-process local simulation — so a sweep survives a full cluster
// outage, just slower.
func ClusterSim(co *cluster.Coordinator) SimFunc {
	local := LocalSim
	return func(p workload.Profile, v workload.Variant, cfg pipeline.Config) (SimResult, error) {
		spec := api.SpecFor(p.Name, v, cfg)
		var lastErr error
		for attempt := 0; attempt < remoteJobAttempts; attempt++ {
			res, _, err := co.Run(context.Background(), spec)
			if err != nil {
				if errors.Is(err, cluster.ErrNoPeers) {
					return local(p, v, cfg)
				}
				if client.IsTransient(err) {
					lastErr = err
					continue
				}
				return SimResult{}, fmt.Errorf("%s/%v/%v: %w", p.Name, v, cfg.Mode, err)
			}
			if res.StopReason != string(pipeline.StopHalt) {
				return SimResult{}, fmt.Errorf("%s/%v/%v: remote run stopped with %q",
					p.Name, v, cfg.Mode, res.StopReason)
			}
			return SimResult{Stats: res.Stats, Metrics: res.Metrics}, nil
		}
		return SimResult{}, fmt.Errorf("%s/%v/%v: job kept failing transiently: %w",
			p.Name, v, cfg.Mode, lastErr)
	}
}
