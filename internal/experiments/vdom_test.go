package experiments

import (
	"strings"
	"testing"
)

func TestVDomSweepShape(t *testing.T) {
	rows, err := VDomSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Domains != 8 || rows[0].Evictions != 0 {
		t.Fatalf("8 sessions must fit: %+v", rows[0])
	}
	if rows[1].Evictions != 0 {
		t.Fatalf("14 sessions must fit in 14 keys: %+v", rows[1])
	}
	// Past the hardware budget, evictions appear and overhead grows
	// monotonically with session count.
	last := -1.0
	for _, r := range rows[2:] {
		if r.Evictions == 0 {
			t.Fatalf("%d sessions must thrash", r.Domains)
		}
		if r.OverheadPct <= last {
			t.Fatalf("overhead must grow: %+v", rows)
		}
		last = r.OverheadPct
	}
	// The paper's reference point: low-single-digit overhead at moderate
	// oversubscription.
	if rows[2].OverheadPct < 0.5 || rows[2].OverheadPct > 15 {
		t.Fatalf("24-session overhead %.2f%% out of plausible band", rows[2].OverheadPct)
	}
	out := RenderVDom(rows)
	if len(out) == 0 {
		t.Fatal("render")
	}
}

func TestWindowSweepShape(t *testing.T) {
	rows, err := WindowSweep(Runner{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(WindowSizes) {
		t.Fatalf("%d rows", len(rows))
	}
	// The speculative benefit must grow (or at least not shrink much) with
	// window size, and SpecMPK must track NonSecure at the 1/24 ratio.
	if rows[len(rows)-1].NonSecureNorm < rows[0].NonSecureNorm-0.02 {
		t.Fatalf("benefit should not shrink with window size: %+v", rows)
	}
	for _, r := range rows {
		if r.NonSecureNorm-r.SpecMPKNorm > 0.10 {
			t.Errorf("AL=%d: SpecMPK trails NonSecure by %.3f", r.ALSize,
				r.NonSecureNorm-r.SpecMPKNorm)
		}
	}
	if out := RenderWindow("520.omnetpp_r", rows); len(out) == 0 {
		t.Fatal("render")
	}
}

func TestPKRUSafeShape(t *testing.T) {
	rows, err := PKRUSafe(Runner{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SerializedPct < 1 {
			t.Errorf("%s: serialized overhead %.1f%% implausibly low", r.Workload, r.SerializedPct)
		}
		// SpecMPK must recover a substantial share of the serialized
		// overhead (not necessarily all of it).
		if r.SpecMPKPct > r.SerializedPct*0.8 {
			t.Errorf("%s: SpecMPK overhead %.1f%% vs serialized %.1f%% — too little recovery",
				r.Workload, r.SpecMPKPct, r.SerializedPct)
		}
	}
	if out := RenderPKRUSafe(rows); !strings.Contains(out, "11.55") {
		t.Fatal("render")
	}
}

func TestJSONRows(t *testing.T) {
	var buf strings.Builder
	rows, err := RowsFor(Runner{}, "hwcost")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&buf, "hwcost", rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"experiment": "hwcost"`) || !strings.Contains(out, "ROB_pkru") {
		t.Fatalf("json:\n%s", out)
	}
	if _, err := RowsFor(Runner{}, "table2"); err != nil {
		t.Fatal(err)
	}
	if _, err := RowsFor(Runner{}, "bogus"); err == nil {
		t.Fatal("unknown experiment must error")
	}
	// A simulation-backed one on a small subset.
	rows, err = RowsFor(Runner{Workloads: []string{"557.xz_r"}}, "fig10")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteJSON(&buf, "fig10", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "WrpkruPerKilo") {
		t.Fatalf("fig10 json:\n%s", buf.String())
	}
}

func TestRdpkruStudy(t *testing.T) {
	rows, err := Rdpkru(Runner{Workloads: []string{"520.omnetpp_r"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	// Load-immediate SpecMPK must clearly beat RMW SpecMPK: RDPKRU
	// serialization eats the speculative benefit.
	if r.SpecMPKFull-r.SpecMPKRdpkru < 0.05 {
		t.Errorf("RMW updates should cost SpecMPK noticeably: imm=%.3f rmw=%.3f",
			r.SpecMPKFull, r.SpecMPKRdpkru)
	}
	if out := RenderRdpkru(rows); !strings.Contains(out, "V-C6") {
		t.Fatal("render")
	}
}

// TestJSONRowsAllExperiments exercises every RowsFor branch on minimal
// inputs (simulation-backed ones use a single small workload).
func TestJSONRowsAllExperiments(t *testing.T) {
	small := Runner{Workloads: []string{"557.xz_r"}}
	for _, name := range []string{"table1", "table2", "fig3", "fig4", "fig9",
		"fig10", "fig13", "vdom", "pkrusafe"} {
		rows, err := RowsFor(small, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf strings.Builder
		if err := WriteJSON(&buf, name, rows); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("%s: envelope missing", name)
		}
	}
}
