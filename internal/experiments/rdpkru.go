package experiments

import (
	"fmt"
	"strings"

	"specmpk/internal/pipeline"
	"specmpk/internal/workload"
)

// RdpkruRow quantifies §V-C6: RDPKRU is serialized in every
// microarchitecture, so protection schemes that update PKRU with glibc's
// read-modify-write pkey_set pattern (RDPKRU → mask → WRPKRU) forfeit most
// of SpecMPK's benefit — the paper's motivation for compilers to keep
// permission values in a data structure (load-immediates) instead.
// All IPCs are normalized to the serialized machine running the
// load-immediate (full) variant.
type RdpkruRow struct {
	Workload string
	// SpecMPKFull is SpecMPK with load-immediate updates (the §IX-B form).
	SpecMPKFull float64
	// SpecMPKRdpkru is SpecMPK with pkey_set-style RMW updates.
	SpecMPKRdpkru float64
	// SerializedRdpkru is the serialized machine with RMW updates.
	SerializedRdpkru float64
}

// RdpkruWorkloads is the default (dense) subset for the study.
var RdpkruWorkloads = []string{"520.omnetpp_r", "500.perlbench_r", "453.povray"}

// Rdpkru runs the §V-C6 study.
func Rdpkru(r Runner) ([]RdpkruRow, error) {
	if len(r.Workloads) == 0 {
		r.Workloads = RdpkruWorkloads
	}
	cat := r.catalog()
	rows := make([]RdpkruRow, len(cat))
	err := forEach(r.workers(), indices(cat), func(i int) error {
		p := cat[i]
		base, err := r.runStats(p, workload.VariantFull, modeConfig(pipeline.ModeSerialized))
		if err != nil {
			return err
		}
		spFull, err := r.runStats(p, workload.VariantFull, modeConfig(pipeline.ModeSpecMPK))
		if err != nil {
			return err
		}
		spRMW, err := r.runStats(p, workload.VariantRdpkru, modeConfig(pipeline.ModeSpecMPK))
		if err != nil {
			return err
		}
		serRMW, err := r.runStats(p, workload.VariantRdpkru, modeConfig(pipeline.ModeSerialized))
		if err != nil {
			return err
		}
		// Normalize by cycles on identical work? The RMW variant retires
		// two extra instructions per update, so compare by cycles of the
		// whole program against the serialized-full cycle count scaled by
		// instruction ratio — IPC ratios do that implicitly.
		rows[i] = RdpkruRow{
			Workload:         label(p),
			SpecMPKFull:      spFull.IPC() / base.IPC(),
			SpecMPKRdpkru:    spRMW.IPC() / base.IPC(),
			SerializedRdpkru: serRMW.IPC() / base.IPC(),
		}
		return nil
	})
	return rows, err
}

// RenderRdpkru prints the study.
func RenderRdpkru(rows []RdpkruRow) string {
	var b strings.Builder
	b.WriteString("RDPKRU study (§V-C6): pkey_set-style read-modify-write vs load-immediate updates\n")
	b.WriteString("(IPC normalized to the serialized machine with load-immediate updates)\n")
	fmt.Fprintf(&b, "%-24s %14s %16s %18s\n", "workload", "specmpk(imm)", "specmpk(rdpkru)", "serialized(rdpkru)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %13.3fx %15.3fx %17.3fx\n",
			r.Workload, r.SpecMPKFull, r.SpecMPKRdpkru, r.SerializedRdpkru)
	}
	b.WriteString("RDPKRU serialization claws back the speculative-WRPKRU gains — the paper's\n")
	b.WriteString("reason to let the compiler keep permission values in immediates (§V-C6).\n")
	return b.String()
}
