// Package experiments regenerates every table and figure in the paper's
// evaluation (§III, §VII, §VIII, §IX). Each experiment returns typed rows —
// consumed by cmd/specmpk-bench, the repository's benchmark suite, and
// EXPERIMENTS.md — plus a text renderer that prints the same series the
// paper plots.
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"specmpk/internal/attack"
	"specmpk/internal/funcsim"
	"specmpk/internal/hwcost"
	"specmpk/internal/isolation"
	"specmpk/internal/pipeline"
	"specmpk/internal/server/client"
	"specmpk/internal/textplot"
	"specmpk/internal/workload"
)

// SimResult is what one simulation contributes to an experiment: the
// pipeline's summary statistics plus the full unified-registry snapshot.
type SimResult struct {
	Stats   pipeline.Stats
	Metrics map[string]any
}

// SimFunc executes one simulation request. The default (in-process) SimFunc
// builds the workload and runs a machine locally; `specmpk-bench -remote`
// installs one backed by a specmpkd daemon instead, which batches the same
// requests through the daemon's queue and content-addressed result cache.
type SimFunc func(p workload.Profile, v workload.Variant, cfg pipeline.Config) (SimResult, error)

// Runner carries experiment-wide options.
type Runner struct {
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Workloads restricts the catalogue (nil = all).
	Workloads []string
	// Modes restricts the microarchitecture sweep for mode-iterating
	// experiments such as stats (nil = every registered policy).
	Modes []pipeline.Mode
	// Sim overrides how simulations execute (nil = in-process). Experiments
	// that need more than a detailed pipeline run — the functional-simulator
	// density counts (fig10), the attack PoC (fig13), the per-PC profiler —
	// always run locally regardless.
	Sim SimFunc
	// Client, when set, lets experiments that speak the job API directly
	// (the sampled-fidelity comparison) submit whole jobs to a daemon
	// instead of adapting through the SimFunc seam.
	Client *client.Client
}

func (r Runner) workers() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (r Runner) modes() []pipeline.Mode {
	if len(r.Modes) > 0 {
		return r.Modes
	}
	return pipeline.RegisteredModes()
}

func (r Runner) catalog() []workload.Profile {
	cat := workload.Catalog()
	if len(r.Workloads) == 0 {
		return cat
	}
	var out []workload.Profile
	for _, name := range r.Workloads {
		if p, ok := workload.ByName(name); ok {
			out = append(out, p)
		}
	}
	return out
}

// forEach runs f over the items with bounded parallelism. Every worker's
// error is kept (joined with errors.Join), not just whichever reached a
// channel first, so a sweep that fails on three workloads reports all three.
func forEach[T any](workers int, items []T, f func(T) error) error {
	sem := make(chan struct{}, workers)
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, it T) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = f(it)
		}(i, it)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func label(p workload.Profile) string {
	return fmt.Sprintf("%s (%s)", p.Name, p.Scheme)
}

// sim executes one simulation request through the runner's SimFunc — locally
// by default, or against a daemon when Runner.Sim is installed.
func (r Runner) sim(p workload.Profile, v workload.Variant, cfg pipeline.Config) (SimResult, error) {
	if r.Sim != nil {
		return r.Sim(p, v, cfg)
	}
	return LocalSim(p, v, cfg)
}

// runStats is sim for the (common) experiments that only need the summary
// statistics.
func (r Runner) runStats(p workload.Profile, v workload.Variant, cfg pipeline.Config) (pipeline.Stats, error) {
	res, err := r.sim(p, v, cfg)
	return res.Stats, err
}

// LocalSim is the in-process SimFunc: build the workload at the variant, run
// it on a fresh machine, snapshot the unified registry.
func LocalSim(p workload.Profile, v workload.Variant, cfg pipeline.Config) (SimResult, error) {
	prog, err := p.Build(v)
	if err != nil {
		return SimResult{}, err
	}
	m, err := pipeline.New(cfg, prog)
	if err != nil {
		return SimResult{}, err
	}
	if err := m.Run(500_000_000); err != nil {
		return SimResult{}, fmt.Errorf("%s/%v/%v: %w", p.Name, v, cfg.Mode, err)
	}
	return SimResult{Stats: m.Stats, Metrics: m.StatsRegistry().Snapshot().Flat()}, nil
}

func modeConfig(mode pipeline.Mode) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Mode = mode
	return cfg
}

// ---------------------------------------------------------------------------
// Figure 3

// Fig3Row is one bar pair of Figure 3: the speedup from letting WRPKRU
// execute speculatively (NonSecure vs Serialized) and the share of cycles
// the serialized machine loses to rename-stage WRPKRU stalls.
type Fig3Row struct {
	Workload       string
	Speedup        float64
	RenameStallPct float64
}

// Fig3 regenerates Figure 3 over the catalogue.
func Fig3(r Runner) ([]Fig3Row, error) {
	cat := r.catalog()
	rows := make([]Fig3Row, len(cat))
	err := forEach(r.workers(), indices(cat), func(i int) error {
		p := cat[i]
		ser, err := r.runStats(p, workload.VariantFull, modeConfig(pipeline.ModeSerialized))
		if err != nil {
			return err
		}
		ns, err := r.runStats(p, workload.VariantFull, modeConfig(pipeline.ModeNonSecure))
		if err != nil {
			return err
		}
		rows[i] = Fig3Row{
			Workload:       label(p),
			Speedup:        ns.IPC() / ser.IPC(),
			RenameStallPct: 100 * float64(ser.SerializeStallCycles) / float64(ser.Cycles),
		}
		return nil
	})
	return rows, err
}

// RenderFig3 prints the figure as a table plus the paper-style summary.
func RenderFig3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: speedup of speculative WRPKRU and rename-stall share\n")
	fmt.Fprintf(&b, "%-24s %10s %14s\n", "workload", "speedup", "rename-stall%")
	var sum, max float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %9.3fx %13.1f%%\n", r.Workload, r.Speedup, r.RenameStallPct)
		sum += r.Speedup
		if r.Speedup > max {
			max = r.Speedup
		}
	}
	fmt.Fprintf(&b, "average speedup %.2f%% (max %.2f%%); paper: 12.58%% avg, 48.43%% max\n",
		100*(sum/float64(len(rows))-1), 100*(max-1))
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 4

// Fig4Row decomposes the protection overhead on the serialized machine into
// the compiler-transformation part (WRPKRU replaced by NOP) and the WRPKRU
// serialization part — the Figure 4 methodology.
type Fig4Row struct {
	Workload            string
	CompilerOverheadPct float64
	SerializeOverhead   float64
	TotalOverheadPct    float64
}

// Fig4 regenerates Figure 4.
func Fig4(r Runner) ([]Fig4Row, error) {
	cat := r.catalog()
	rows := make([]Fig4Row, len(cat))
	err := forEach(r.workers(), indices(cat), func(i int) error {
		p := cat[i]
		cfg := modeConfig(pipeline.ModeSerialized)
		base, err := r.runStats(p, workload.VariantNone, cfg)
		if err != nil {
			return err
		}
		nop, err := r.runStats(p, workload.VariantNop, cfg)
		if err != nil {
			return err
		}
		full, err := r.runStats(p, workload.VariantFull, cfg)
		if err != nil {
			return err
		}
		rows[i] = Fig4Row{
			Workload:            label(p),
			CompilerOverheadPct: 100 * (float64(nop.Cycles)/float64(base.Cycles) - 1),
			SerializeOverhead:   100 * (float64(full.Cycles)/float64(nop.Cycles) - 1),
			TotalOverheadPct:    100 * (float64(full.Cycles)/float64(base.Cycles) - 1),
		}
		return nil
	})
	return rows, err
}

// RenderFig4 prints the overhead breakdown.
func RenderFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: overhead breakdown on the serialized machine\n")
	fmt.Fprintf(&b, "%-24s %12s %14s %10s\n", "workload", "compiler%", "serialization%", "total%")
	var cSum, sSum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %11.1f%% %13.1f%% %9.1f%%\n",
			r.Workload, r.CompilerOverheadPct, r.SerializeOverhead, r.TotalOverheadPct)
		cSum += r.CompilerOverheadPct
		sSum += r.SerializeOverhead
	}
	n := float64(len(rows))
	fmt.Fprintf(&b, "average: compiler %.1f%%, serialization %.1f%%; paper (native Cascade Lake): 10.28%% / 69.76%%\n",
		cSum/n, sSum/n)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 9

// Fig9Row is one workload's normalized IPC for the two speculative
// microarchitectures over the serialized baseline.
type Fig9Row struct {
	Workload      string
	SerializedIPC float64
	NonSecureNorm float64
	SpecMPKNorm   float64
}

// Fig9 regenerates the headline result.
func Fig9(r Runner) ([]Fig9Row, error) {
	cat := r.catalog()
	rows := make([]Fig9Row, len(cat))
	err := forEach(r.workers(), indices(cat), func(i int) error {
		p := cat[i]
		ser, err := r.runStats(p, workload.VariantFull, modeConfig(pipeline.ModeSerialized))
		if err != nil {
			return err
		}
		ns, err := r.runStats(p, workload.VariantFull, modeConfig(pipeline.ModeNonSecure))
		if err != nil {
			return err
		}
		sp, err := r.runStats(p, workload.VariantFull, modeConfig(pipeline.ModeSpecMPK))
		if err != nil {
			return err
		}
		rows[i] = Fig9Row{
			Workload:      label(p),
			SerializedIPC: ser.IPC(),
			NonSecureNorm: ns.IPC() / ser.IPC(),
			SpecMPKNorm:   sp.IPC() / ser.IPC(),
		}
		return nil
	})
	return rows, err
}

// Fig9Summary aggregates the figure the way the paper quotes it.
type Fig9Summary struct {
	AvgSpecMPKSpeedupPct float64
	MaxSpecMPKSpeedupPct float64
	AvgGapToNonSecurePct float64
}

// Summarize computes the quoted aggregates.
func Summarize(rows []Fig9Row) Fig9Summary {
	var sum, max, gap float64
	for _, r := range rows {
		sum += r.SpecMPKNorm
		if r.SpecMPKNorm > max {
			max = r.SpecMPKNorm
		}
		gap += r.NonSecureNorm - r.SpecMPKNorm
	}
	n := float64(len(rows))
	return Fig9Summary{
		AvgSpecMPKSpeedupPct: 100 * (sum/n - 1),
		MaxSpecMPKSpeedupPct: 100 * (max - 1),
		AvgGapToNonSecurePct: 100 * gap / n,
	}
}

// RenderFig9 prints the normalized-IPC series.
func RenderFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: normalized IPC over the serialized WRPKRU machine\n")
	fmt.Fprintf(&b, "%-24s %10s %12s %10s\n", "workload", "ser. IPC", "nonsecure", "specmpk")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %10.3f %11.3fx %9.3fx\n",
			r.Workload, r.SerializedIPC, r.NonSecureNorm, r.SpecMPKNorm)
	}
	s := Summarize(rows)
	fmt.Fprintf(&b, "SpecMPK speedup: avg %.2f%%, max %.2f%% (paper: 12.21%% avg, 48.42%% max); avg gap to NonSecure %.2f%%\n",
		s.AvgSpecMPKSpeedupPct, s.MaxSpecMPKSpeedupPct, s.AvgGapToNonSecurePct)
	b.WriteByte('\n')
	labels := make([]string, len(rows))
	ns := make([]float64, len(rows))
	sp := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Workload
		ns[i] = r.NonSecureNorm
		sp[i] = r.SpecMPKNorm
	}
	b.WriteString(textplot.Bars("normalized IPC over serialized", labels,
		[]string{"nonsecure", "specmpk"},
		map[string][]float64{"nonsecure": ns, "specmpk": sp}, 44))
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 10

// Fig10Row is one workload's dynamic WRPKRU density.
type Fig10Row struct {
	Workload       string
	WrpkruPerKilo  float64
	DynamicInsts   uint64
	DynamicWrpkrus uint64
}

// Fig10 measures WRPKRU per kilo-instruction on the functional machine.
func Fig10(r Runner) ([]Fig10Row, error) {
	cat := r.catalog()
	rows := make([]Fig10Row, len(cat))
	err := forEach(r.workers(), indices(cat), func(i int) error {
		p := cat[i]
		prog, err := p.Build(workload.VariantFull)
		if err != nil {
			return err
		}
		m, err := funcsim.New(prog)
		if err != nil {
			return err
		}
		if err := m.Run(50_000_000, 1); err != nil {
			return err
		}
		rows[i] = Fig10Row{
			Workload:       label(p),
			WrpkruPerKilo:  m.Stats.WrpkruPerKilo(),
			DynamicInsts:   m.Stats.Insts,
			DynamicWrpkrus: m.Stats.Wrpkru,
		}
		return nil
	})
	return rows, err
}

// RenderFig10 prints the density distribution.
func RenderFig10(rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: WRPKRU frequency in the dynamic instruction stream\n")
	fmt.Fprintf(&b, "%-24s %14s %12s %10s\n", "workload", "wrpkru/kinst", "insts", "wrpkrus")
	sorted := append([]Fig10Row(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].WrpkruPerKilo > sorted[j].WrpkruPerKilo })
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-24s %14.2f %12d %10d\n", r.Workload, r.WrpkruPerKilo, r.DynamicInsts, r.DynamicWrpkrus)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 11

// Fig11Sizes are the swept ROB_pkru depths. The paper sweeps AL ratios
// 1/96, 1/48 and 1/24 and its text maps them to 2, 4 and 8 entries; for the
// 352-entry active list of Table III the 1/24 ratio actually lands at ~15
// entries, so we sweep 16 as well — and it is the 16-entry point at which
// the densest workload (520.omnetpp_r) matches NonSecure, consistent with
// the paper's ratio-based claim.
var Fig11Sizes = []int{2, 4, 8, 16}

// Fig11Workloads is the subset §VII-1 discusses.
var Fig11Workloads = []string{
	"502.gcc_r", "500.perlbench_r", "531.deepsjeng_r", "541.leela_r",
	"526.blender_r", "453.povray", "520.omnetpp_r", "471.omnetpp",
}

// Fig11Row is one workload's normalized IPC per ROB_pkru depth, with the
// NonSecure bound for reference.
type Fig11Row struct {
	Workload      string
	Norm          map[int]float64 // ROB_pkru size -> IPC normalized to serialized
	NonSecureNorm float64
}

// Fig11 regenerates the sensitivity sweep.
func Fig11(r Runner) ([]Fig11Row, error) {
	if len(r.Workloads) == 0 {
		r.Workloads = Fig11Workloads
	}
	cat := r.catalog()
	rows := make([]Fig11Row, len(cat))
	err := forEach(r.workers(), indices(cat), func(i int) error {
		p := cat[i]
		ser, err := r.runStats(p, workload.VariantFull, modeConfig(pipeline.ModeSerialized))
		if err != nil {
			return err
		}
		ns, err := r.runStats(p, workload.VariantFull, modeConfig(pipeline.ModeNonSecure))
		if err != nil {
			return err
		}
		row := Fig11Row{
			Workload:      label(p),
			Norm:          make(map[int]float64, len(Fig11Sizes)),
			NonSecureNorm: ns.IPC() / ser.IPC(),
		}
		for _, size := range Fig11Sizes {
			cfg := modeConfig(pipeline.ModeSpecMPK)
			cfg.ROBPkruSize = size
			sp, err := r.runStats(p, workload.VariantFull, cfg)
			if err != nil {
				return err
			}
			row.Norm[size] = sp.IPC() / ser.IPC()
		}
		rows[i] = row
		return nil
	})
	return rows, err
}

// RenderFig11 prints the sweep.
func RenderFig11(rows []Fig11Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: normalized IPC for ROB_pkru sizes (paper sweeps AL ratios\n")
	fmt.Fprintf(&b, "1/96, 1/48, 1/24; 16 entries is the faithful 1/24 point for AL=352)\n")
	fmt.Fprintf(&b, "%-24s %8s %8s %8s %8s %10s\n", "workload", "2-entry", "4-entry", "8-entry", "16-entry", "nonsecure")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %7.3fx %7.3fx %7.3fx %7.3fx %9.3fx\n",
			r.Workload, r.Norm[2], r.Norm[4], r.Norm[8], r.Norm[16], r.NonSecureNorm)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 13

// Fig13Result bundles the flush+reload latencies for the two interesting
// microarchitectures.
type Fig13Result struct {
	NonSecure attack.Result
	SpecMPK   attack.Result
}

// Fig13 runs the proof-of-concept attack on both machines.
func Fig13() (Fig13Result, error) {
	cfg := attack.DefaultConfig()
	ns, err := attack.Run(pipeline.ModeNonSecure, cfg)
	if err != nil {
		return Fig13Result{}, err
	}
	sp, err := attack.Run(pipeline.ModeSpecMPK, cfg)
	if err != nil {
		return Fig13Result{}, err
	}
	return Fig13Result{NonSecure: ns, SpecMPK: sp}, nil
}

// RenderFig13 prints the probe latencies around the hot indices plus the
// hit sets.
func RenderFig13(res Fig13Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: flush+reload latencies (train=%d, secret=%d)\n",
		res.NonSecure.Cfg.TrainValue, res.NonSecure.Cfg.SecretValue)
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "index", "nonsecure", "specmpk")
	interesting := map[int]bool{
		int(res.NonSecure.Cfg.TrainValue):  true,
		int(res.NonSecure.Cfg.SecretValue): true,
	}
	for i := 0; i < attack.ProbeEntries; i++ {
		if !interesting[i] && i%64 != 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8d %11dc %11dc\n", i, res.NonSecure.Latency[i], res.SpecMPK.Latency[i])
	}
	fmt.Fprintf(&b, "hot indices: nonsecure %v, specmpk %v\n",
		res.NonSecure.HotIndices(), res.SpecMPK.HotIndices())
	fmt.Fprintf(&b, "leak: nonsecure=%v specmpk=%v (paper: NonSecure leaks 101, SpecMPK only 72 hot)\n",
		res.NonSecure.Leaked(), res.SpecMPK.Leaked())
	b.WriteByte('\n')
	b.WriteString(textplot.Latency("NonSecure SpecMPK reload latency",
		res.NonSecure.Latency[:], res.NonSecure.Threshold, 128))
	b.WriteByte('\n')
	b.WriteString(textplot.Latency("SpecMPK reload latency",
		res.SpecMPK.Latency[:], res.SpecMPK.Threshold, 128))
	return b.String()
}

// ---------------------------------------------------------------------------
// Tables

// Table1 evaluates the isolation-technique property matrix.
func Table1() ([]isolation.Properties, error) { return isolation.Evaluate() }

// RenderTable1 prints the property matrix with ticks.
func RenderTable1(rows []isolation.Properties) string {
	tick := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: properties of isolation techniques (executable models)\n")
	fmt.Fprintf(&b, "%-10s %6s %8s %16s %12s  %s\n", "method", "fast", "secure", "least-privilege", "switch(cyc)", "notes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6s %8s %16s %12.0f  %s\n",
			r.Name, tick(r.FastInterleaved), tick(r.Secure), tick(r.LeastPrivilege), r.SwitchCycles, r.Notes)
	}
	return b.String()
}

// Table2Row is one row of the paper's Table II (new source operands).
type Table2Row struct {
	InstType    string
	NewOperands []string
}

// Table2 returns the structural description of the additional source
// operands SpecMPK introduces.
func Table2() []Table2Row {
	return []Table2Row{
		{"Load", []string{"ROB_pkru", "ARF_pkru", "AccessDisableCounter"}},
		{"Store", []string{"ROB_pkru", "ARF_pkru", "AccessDisableCounter", "WriteDisableCounter"}},
		{"WRPKRU", []string{"ROB_pkru"}},
	}
}

// RenderTable2 prints it.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: additional source operands in SpecMPK\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %s\n", r.InstType, strings.Join(r.NewOperands, ", "))
	}
	return b.String()
}

// RenderTable3 prints the simulated machine configuration.
func RenderTable3() string {
	cfg := pipeline.DefaultConfig()
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: simulation configuration\n")
	fmt.Fprintf(&b, "issue/decode/commit width   %d\n", cfg.Width)
	fmt.Fprintf(&b, "AL/LQ/SQ/IQ/PRF             %d/%d/%d/%d/%d\n",
		cfg.ALSize, cfg.LQSize, cfg.SQSize, cfg.IQSize, cfg.PRFSize)
	fmt.Fprintf(&b, "ROB_pkru                    %d\n", cfg.ROBPkruSize)
	fmt.Fprintf(&b, "BTB / RAS                   %d / %d entries\n", cfg.BTBEntries, cfg.RASEntries)
	fmt.Fprintf(&b, "direction predictor         TAGE (LTAGE-style)\n")
	c := cfg.Caches
	fmt.Fprintf(&b, "L1I  %dKB %d-way %dc | L1D %dKB %d-way %dc\n",
		c.L1I.SizeB>>10, c.L1I.Ways, c.L1I.Latency, c.L1D.SizeB>>10, c.L1D.Ways, c.L1D.Latency)
	fmt.Fprintf(&b, "L2   %dKB %d-way %dc | L3  %dMB %d-way %dc | DRAM %dc\n",
		c.L2.SizeB>>10, c.L2.Ways, c.L2.Latency, c.L3.SizeB>>20, c.L3.Ways, c.L3.Latency, c.MemLatency)
	return b.String()
}

// HWCost recomputes the §VIII storage accounting for the default machine.
func HWCost() hwcost.Breakdown {
	cfg := pipeline.DefaultConfig()
	return hwcost.Compute(cfg.ROBPkruSize, cfg.SQSize)
}

// RenderHWCost prints it with the paper comparison.
func RenderHWCost(b hwcost.Breakdown) string {
	cfg := pipeline.DefaultConfig()
	return fmt.Sprintf("Hardware overhead (paper §VIII)\n%stotal %.1f B = %.2f%% of the %dKB L1D (paper: 93 B, 0.19%%)\n",
		b, b.TotalBytes(), b.PercentOfL1D(cfg.Caches.L1D.SizeB), cfg.Caches.L1D.SizeB>>10)
}

func indices[T any](s []T) []int {
	out := make([]int, len(s))
	for i := range s {
		out[i] = i
	}
	return out
}
