// Package pipeview renders per-instruction pipeline diagrams (in the style
// of gem5's pipeview / Konata) from the pipeline's trace records:
//
//	seq      pc        F..R---I..C.W  inst
//
// F fetch, R rename, I issue/execute, C complete, W retire ("written
// back"); dots are in-flight wait cycles, dashes the rename-to-issue queue
// wait. The serialized machine's WRPKRU drain and SpecMPK's head-replays
// are immediately visible in the gaps.
package pipeview

import (
	"fmt"
	"strings"

	"specmpk/internal/pipeline"
)

// Render draws the records against a shared time axis starting at the first
// record's fetch cycle. maxWidth caps the diagram columns (0 = 100).
func Render(recs []pipeline.TraceRecord, maxWidth int) string {
	if len(recs) == 0 {
		return "(no trace records)\n"
	}
	if maxWidth <= 0 {
		maxWidth = 100
	}
	base := recs[0].Fetch
	var b strings.Builder
	fmt.Fprintf(&b, "cycle origin %d; F=fetch R=rename I=issue C=complete W=retire\n", base)
	for _, r := range recs {
		line := buildLine(r, base, maxWidth)
		fmt.Fprintf(&b, "%6d  0x%06x  %s  %s\n", r.Seq, r.PC, line, r.Inst)
	}
	return b.String()
}

func buildLine(r pipeline.TraceRecord, base uint64, width int) string {
	pos := func(c uint64) int {
		if c < base {
			return 0
		}
		return int(c - base)
	}
	f, rn, is, cp, w := pos(r.Fetch), pos(r.Rename), pos(r.Issue), pos(r.Complete), pos(r.Retire)
	// Enforce monotonicity for display (squash replays can reorder issue
	// versus the original rename on re-executed paths).
	if rn < f {
		rn = f
	}
	if is < rn {
		is = rn
	}
	if cp < is {
		cp = is
	}
	if w < cp {
		w = cp
	}
	if w >= width {
		// Scale the whole line into the window, keeping ordering.
		scale := func(x int) int { return x * (width - 1) / w }
		f, rn, is, cp, w = scale(f), scale(rn), scale(is), scale(cp), scale(w)
	}
	line := make([]byte, w+1)
	for i := range line {
		line[i] = ' '
	}
	for i := f; i < rn; i++ {
		line[i] = '.'
	}
	for i := rn; i < is; i++ {
		line[i] = '-'
	}
	for i := is; i < cp; i++ {
		line[i] = '.'
	}
	// Markers last so they overwrite the fillers.
	line[f] = 'F'
	line[rn] = 'R'
	line[is] = 'I'
	line[cp] = 'C'
	line[w] = 'W'
	return string(line)
}
