package pipeview

import (
	"strings"
	"testing"

	"specmpk/internal/asm"
	"specmpk/internal/isa"
	"specmpk/internal/pipeline"
)

func TestRenderFromRealTrace(t *testing.T) {
	b := asm.NewBuilder(0x10000)
	f := b.Func("main")
	f.Movi(9, 5).Movi(10, 0)
	f.Label("loop")
	f.Add(10, 10, 9)
	f.Addi(9, 9, -1)
	f.Bne(9, isa.RegZero, "loop")
	f.Halt()
	prog, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	m, err := pipeline.New(pipeline.DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	var recs []pipeline.TraceRecord
	m.OnTrace = func(r pipeline.TraceRecord) { recs = append(recs, r) }
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if len(recs) != int(m.Stats.Insts) {
		t.Fatalf("%d records for %d retired", len(recs), m.Stats.Insts)
	}
	// Timestamps are monotone per instruction and retires are in order.
	for i, r := range recs {
		if r.Rename < r.Fetch || r.Issue < r.Rename || r.Retire < r.Complete {
			t.Fatalf("record %d timestamps out of order: %+v", i, r)
		}
		if i > 0 && r.Retire < recs[i-1].Retire {
			t.Fatalf("retires out of order at %d", i)
		}
	}
	out := Render(recs, 80)
	if !strings.Contains(out, "F") || !strings.Contains(out, "W") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "movi r9, 5") {
		t.Fatalf("instruction text missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(recs)+1 {
		t.Fatalf("%d lines for %d records", len(lines), len(recs))
	}
}

func TestRenderEmptyAndScaling(t *testing.T) {
	if !strings.Contains(Render(nil, 0), "no trace") {
		t.Fatal("empty render")
	}
	// A record far beyond the width must be scaled, not overflow.
	recs := []pipeline.TraceRecord{{
		Seq: 1, Fetch: 0, Rename: 10, Issue: 500, Complete: 900, Retire: 1000,
	}}
	out := Render(recs, 50)
	for _, l := range strings.Split(out, "\n") {
		if len(l) > 50+40 { // columns + prefix/suffix slack
			t.Fatalf("line too long: %d", len(l))
		}
	}
}
